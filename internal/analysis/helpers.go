package analysis

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// funcDecls yields every function and method declaration in the
// package, including the file it lives in.
func funcDecls(p *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// calleeFunc resolves a call expression to the *types.Func it
// invokes, or nil for builtins, conversions, and function values.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeFullName returns the types.Func full name of the callee
// (e.g. "time.Now" or "(*sync.Mutex).Lock"), or "".
func calleeFullName(p *Package, call *ast.CallExpr) string {
	if fn := calleeFunc(p, call); fn != nil {
		return fn.FullName()
	}
	return ""
}

// exprString renders an expression compactly for messages and for
// matching lock receivers ("s.mu", "entry.mu").
func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "<expr>"
	}
	return sb.String()
}

// derefStruct returns the underlying struct type of t, unwrapping
// one level of pointer, or nil.
func derefStruct(t types.Type) *types.Struct {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// namedPathName returns (package path, type name) of a named or
// pointer-to-named type, or ("", "").
func namedPathName(t types.Type) (string, string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// returnsIdent reports whether fn contains a return statement whose
// results mention the object obj, or whether obj is one of the named
// result parameters.
func returnsIdent(p *Package, fn *ast.FuncDecl, obj types.Object) bool {
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			for _, name := range field.Names {
				if p.Info.Defs[name] == obj {
					return true
				}
			}
		}
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// mentionsObject reports whether the expression tree uses obj.
func mentionsObject(p *Package, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
