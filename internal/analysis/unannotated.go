package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// UnannotatedAnswer flags construction sites of the system's answer
// types that never attach any reliability annotation. The paper's
// layer-ⓔ contract (P2 Grounding, P3 Explainability) says every
// answer leaves the pipeline with a confidence, provenance, and
// evidence trail — or an explicit abstention. A composite literal
// that sets none of those fields, is never assigned them afterwards
// in the same function, and does not flow through finalize() is an
// answer that will reach the user unannotated.
var UnannotatedAnswer = &Analyzer{
	Name:     ruleUnannotatedAnswer,
	Doc:      "Answer/response literals that never gain confidence, evidence, provenance, or an abstention",
	Severity: SeverityError,
	Run:      runUnannotatedAnswer,
}

// answerTypeSpec describes one audited answer type: a package-path
// suffix plus type name, the annotation fields any one of which
// satisfies the contract, and function names that perform the
// annotation when the literal flows through them.
type answerTypeSpec struct {
	pkgSuffix  string
	typeName   string
	fields     map[string]bool
	finalizers map[string]bool
}

var answerTypes = []answerTypeSpec{
	{
		pkgSuffix:  "internal/core",
		typeName:   "Answer",
		fields:     map[string]bool{"Confidence": true, "Evidence": true, "Provenance": true, "Abstained": true},
		finalizers: map[string]bool{"finalize": true},
	},
	{
		pkgSuffix:  "internal/server",
		typeName:   "AskResponse",
		fields:     map[string]bool{"Confidence": true, "Abstained": true},
		finalizers: map[string]bool{},
	},
}

func matchAnswerType(t types.Type) *answerTypeSpec {
	path, name := namedPathName(t)
	for i := range answerTypes {
		spec := &answerTypes[i]
		if name == spec.typeName && strings.HasSuffix(path, spec.pkgSuffix) {
			return spec
		}
	}
	return nil
}

func runUnannotatedAnswer(p *Package) []Finding {
	var out []Finding
	for _, fd := range funcDecls(p) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[lit]
			if !ok {
				return true
			}
			spec := matchAnswerType(tv.Type)
			if spec == nil {
				return true
			}
			if literalSetsAnnotation(lit, spec) {
				return true
			}
			if obj := assignedVar(p, fd, lit); obj != nil {
				if annotatedLater(p, fd, obj, spec) {
					return true
				}
			}
			out = append(out, Finding{
				Rule: ruleUnannotatedAnswer, Severity: SeverityError,
				Pos: p.Fset.Position(lit.Pos()),
				Message: fmt.Sprintf("%s constructed without confidence/evidence/provenance and never annotated or finalized; unannotated answers violate the layer-ⓔ contract",
					spec.typeName),
			})
			return true
		})
	}
	return out
}

// literalSetsAnnotation reports whether the literal itself sets one
// of the annotation fields (positional literals set all fields).
func literalSetsAnnotation(lit *ast.CompositeLit, spec *answerTypeSpec) bool {
	if len(lit.Elts) == 0 {
		return false
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return true // positional: every field initialised
		}
		if key, ok := kv.Key.(*ast.Ident); ok && spec.fields[key.Name] {
			return true
		}
	}
	return false
}

// assignedVar returns the variable object the literal is directly
// bound to (ans := &Answer{} / var ans = Answer{}), or nil.
func assignedVar(p *Package, fd *ast.FuncDecl, lit *ast.CompositeLit) types.Object {
	var obj types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				if stripAddr(rhs) == lit {
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						if o := p.Info.Defs[id]; o != nil {
							obj = o
						} else if o := p.Info.Uses[id]; o != nil {
							obj = o
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range st.Values {
				if stripAddr(v) == lit && i < len(st.Names) {
					if o := p.Info.Defs[st.Names[i]]; o != nil {
						obj = o
					}
				}
			}
		}
		return obj == nil
	})
	return obj
}

func stripAddr(e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		return ast.Unparen(u.X)
	}
	return e
}

// annotatedLater reports whether the function later assigns an
// annotation field on the variable or passes it to a finalizer.
func annotatedLater(p *Package, fd *ast.FuncDecl, obj types.Object, spec *answerTypeSpec) bool {
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				// ans.Field = … — or a deeper chain rooted at the field.
				sel := rootSelector(lhs)
				if sel == nil {
					continue
				}
				if id, isIdent := sel.X.(*ast.Ident); isIdent && p.Info.Uses[id] == obj && spec.fields[sel.Sel.Name] {
					ok = true
				}
			}
		case *ast.CallExpr:
			name := ""
			switch fun := ast.Unparen(st.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if !spec.finalizers[name] {
				return true
			}
			for _, arg := range st.Args {
				if mentionsObject(p, arg, obj) {
					ok = true
				}
			}
		}
		return !ok
	})
	return ok
}

// rootSelector unwraps a selector chain (a.B.C → a.B) to the
// selector whose X is the root expression.
func rootSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		if _, isIdent := sel.X.(*ast.Ident); isIdent {
			return sel
		}
		e = sel.X
	}
}
