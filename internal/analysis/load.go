package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path (module-relative for local packages)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using
// only the standard library: module-internal imports are resolved
// from source, everything else through the default (export-data)
// importer.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests adds in-package _test.go files to each package.
	// External (pkg_test) test packages are never loaded.
	IncludeTests bool

	modPath string
	modDir  string
	std     types.Importer
	pkgs    map[string]*Package // keyed by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader creates a loader rooted at the module containing dir: it
// walks up from dir until it finds a go.mod and reads the module
// path from it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		modDir = parent
	}
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", modDir)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modPath: modPath,
		modDir:  modDir,
		std:     importer.Default(),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// ModuleDir returns the module root directory.
func (l *Loader) ModuleDir() string { return l.modDir }

// Load resolves a pattern — "./...", a relative directory, or a
// module-internal import path — to loaded packages. Directories
// named testdata, hidden directories, and directories without
// non-test Go files are skipped during ./... expansion.
func (l *Loader) Load(pattern string) ([]*Package, error) {
	var dirs []string
	switch {
	case pattern == "./..." || pattern == "...":
		var err error
		dirs, err = l.walkDirs(l.modDir)
		if err != nil {
			return nil, err
		}
	case strings.HasSuffix(pattern, "/..."):
		base := strings.TrimSuffix(pattern, "/...")
		var err error
		dirs, err = l.walkDirs(l.resolveDir(base))
		if err != nil {
			return nil, err
		}
	default:
		dirs = []string{l.resolveDir(pattern)}
	}
	var out []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			out = append(out, p)
		}
	}
	return out, nil
}

// resolveDir maps a pattern to a directory: import paths under the
// module resolve relative to the module root, anything else is
// treated as a filesystem path.
func (l *Loader) resolveDir(pattern string) string {
	if rest, ok := strings.CutPrefix(pattern, l.modPath); ok {
		return filepath.Join(l.modDir, filepath.FromSlash(strings.TrimPrefix(rest, "/")))
	}
	if filepath.IsAbs(pattern) {
		return pattern
	}
	return filepath.Join(l.modDir, filepath.FromSlash(strings.TrimPrefix(pattern, "./")))
}

func (l *Loader) walkDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir, returning a
// cached result on repeat calls. Returns (nil, nil) when the
// directory holds no non-test Go files.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPathFor(abs)
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var pkgName string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		fname := f.Name.Name
		if strings.HasSuffix(fname, "_test") {
			continue // external test packages are out of scope
		}
		if pkgName == "" || !strings.HasSuffix(name, "_test.go") {
			if pkgName != "" && pkgName != fname && !strings.HasSuffix(name, "_test.go") {
				return nil, fmt.Errorf("analysis: multiple packages in %s: %s and %s", abs, pkgName, fname)
			}
			pkgName = fname
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	// cdalint:ignore dropped-error -- type errors are collected through
	// conf.Error above and reported together below.
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v (+%d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	p := &Package{Path: path, Dir: abs, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// importPathFor maps a directory inside the module to its import
// path; directories outside (e.g. testdata fixtures addressed
// directly) get a synthetic path based on the directory name.
func (l *Loader) importPathFor(abs string) string {
	if rel, err := filepath.Rel(l.modDir, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.modPath
		}
		return l.modPath + "/" + filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}

// Import implements types.Importer: module-internal packages are
// type-checked from source, everything else (stdlib) goes through
// the default export-data importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir := filepath.Join(l.modDir, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", dir)
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
