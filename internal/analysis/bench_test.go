package analysis

import "testing"

// BenchmarkCdalint measures one full-suite analysis pass over the
// whole module — the exact work scripts/check.sh runs under its
// 60-second budget. Loading and type-checking the packages happens
// once outside the timer; each iteration re-runs every analyzer,
// including the module-wide call-graph construction and dataflow
// fixed points (NewModule is rebuilt per Run call, as in the CLI).
func BenchmarkCdalint(b *testing.B) {
	loader, err := NewLoader(".")
	if err != nil {
		b.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		b.Fatalf("expected the whole module, got %d packages", len(pkgs))
	}
	analyzers := Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := Run(pkgs, analyzers); len(findings) != 0 {
			b.Fatalf("module not lint-clean: %d findings", len(findings))
		}
	}
}
