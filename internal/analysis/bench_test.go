package analysis

import "testing"

// BenchmarkCdalint measures one full-suite analysis pass over the
// whole module — the exact work scripts/check.sh runs under its
// 60-second budget. Loading and type-checking the packages happens
// once outside the timer; each iteration re-runs every analyzer,
// including the module-wide call-graph construction and dataflow
// fixed points (NewModule is rebuilt per Run call, as in the CLI).
func BenchmarkCdalint(b *testing.B) {
	loader, err := NewLoader(".")
	if err != nil {
		b.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		b.Fatalf("expected the whole module, got %d packages", len(pkgs))
	}
	analyzers := Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := Run(pkgs, analyzers); len(findings) != 0 {
			for _, f := range findings {
				b.Errorf("%s", f)
			}
			b.Fatalf("module not lint-clean: %d findings (listed above)", len(findings))
		}
	}
}

// BenchmarkCdastate measures just the four CFG/dataflow typestate
// rules (unlock-path, resource-leak, fsync-order, goroutine-leak)
// over the whole module, so regressions in the CFG builder or the
// fixed-point solver show up separately from the rest of the suite.
func BenchmarkCdastate(b *testing.B) {
	loader, err := NewLoader(".")
	if err != nil {
		b.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	analyzers := []*Analyzer{UnlockPath, ResourceLeak, FsyncOrder, GoroutineLeak}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := Run(pkgs, analyzers); len(findings) != 0 {
			for _, f := range findings {
				b.Errorf("%s", f)
			}
			b.Fatalf("module not clean under typestate rules: %d findings (listed above)", len(findings))
		}
	}
}

// BenchmarkCdarace measures just the three lockset race rules
// (racy-access, atomic-plain-mix, guard-escape) over the whole
// module. The interprocedural lockset fixed point is the most
// expensive single analysis in the suite, so it gets its own number:
// a regression here must not hide inside BenchmarkCdalint's total.
func BenchmarkCdarace(b *testing.B) {
	loader, err := NewLoader(".")
	if err != nil {
		b.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	analyzers := []*Analyzer{RacyAccess, AtomicPlainMix, GuardEscape}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := Run(pkgs, analyzers); len(findings) != 0 {
			for _, f := range findings {
				b.Errorf("%s", f)
			}
			b.Fatalf("module not clean under lockset rules: %d findings (listed above)", len(findings))
		}
	}
}
