package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MutexHygiene forbids by-value copies of structs containing
// sync.Mutex / sync.RWMutex (parameters, receivers, range variables,
// plain assignments) — a copied lock silently stops guarding. Its
// former lock/unlock pairing heuristic is superseded by the CFG-based
// unlock-path rule, which checks every path instead of "no return
// before the first unlock".
var MutexHygiene = &Analyzer{
	Name:     ruleMutexHygiene,
	Doc:      "by-value copies of lock-bearing structs",
	Severity: SeverityError,
	Run:      runMutexHygiene,
}

func runMutexHygiene(p *Package) []Finding {
	return lockCopies(p)
}

// --- check 1: by-value copies -------------------------------------

// containsLock reports whether t (not a pointer to it) embeds a
// sync.Mutex or sync.RWMutex anywhere in its struct tree.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if path, name := namedPathName(t); path == "sync" && (name == "Mutex" || name == "RWMutex") {
		// A bare pointer to a lock never reaches here: namedPathName
		// unwraps it, so guard on the concrete kind below.
		if _, isPtr := t.(*types.Pointer); !isPtr {
			return true
		}
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if _, isPtr := ft.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsLock(ft, seen) {
			return true
		}
	}
	return false
}

func typeHasLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return containsLock(t, map[types.Type]bool{})
}

func lockCopies(p *Package) []Finding {
	var out []Finding
	flag := func(pos token.Pos, what string, t types.Type) {
		out = append(out, Finding{
			Rule: ruleMutexHygiene, Severity: SeverityError,
			Pos: p.Fset.Position(pos),
			Message: fmt.Sprintf("%s copies %s which contains a mutex; pass a pointer so the lock keeps guarding",
				what, t.String()),
		})
	}
	for _, fd := range funcDecls(p) {
		// By-value receivers and parameters.
		if fd.Recv != nil {
			for _, field := range fd.Recv.List {
				if tv, ok := p.Info.Types[field.Type]; ok && typeHasLock(tv.Type) {
					flag(field.Pos(), "receiver", tv.Type)
				}
			}
		}
		for _, field := range fd.Type.Params.List {
			if tv, ok := p.Info.Types[field.Type]; ok && typeHasLock(tv.Type) {
				flag(field.Pos(), "parameter", tv.Type)
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.RangeStmt:
				if st.Value != nil {
					// Range idents introduced with := are definitions,
					// so resolve their type through Defs.
					var t types.Type
					if id, ok := st.Value.(*ast.Ident); ok {
						if obj := p.Info.Defs[id]; obj != nil {
							t = obj.Type()
						}
					}
					if t == nil {
						if tv, ok := p.Info.Types[st.Value]; ok {
							t = tv.Type
						}
					}
					if typeHasLock(t) {
						flag(st.Value.Pos(), "range value", t)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range st.Rhs {
					if i >= len(st.Lhs) {
						break
					}
					if isBlank(st.Lhs[i]) {
						continue // _ = x is a use marker, not a real copy
					}
					if !copiesExisting(rhs) {
						continue
					}
					if tv, ok := p.Info.Types[rhs]; ok && typeHasLock(tv.Type) {
						flag(rhs.Pos(), "assignment", tv.Type)
					}
				}
			}
			return true
		})
	}
	return out
}

// copiesExisting reports whether the expression reads an existing
// value (identifier, field, index, deref) rather than constructing a
// fresh one.
func copiesExisting(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = e
		return true
	}
	return false
}

// --- check 2: lock/unlock pairing ---------------------------------

type lockKind int

const (
	writeLock lockKind = iota
	readLock
)

type lockEvent struct {
	key      string // receiver expression, e.g. "s.mu"
	kind     lockKind
	pos      token.Pos
	deferred bool
	unlock   bool
}

// lockPairing walks one function and checks every Lock/RLock has a
// safe release.
func lockPairing(p *Package, fd *ast.FuncDecl) []Finding {
	var events []lockEvent
	var returns []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			returns = append(returns, st.Pos())
		case *ast.DeferStmt:
			if ev, ok := lockCall(p, st.Call); ok {
				ev.deferred = true
				events = append(events, ev)
			}
			return false // don't double-count the inner CallExpr
		case *ast.CallExpr:
			if ev, ok := lockCall(p, st); ok {
				events = append(events, ev)
			}
		case *ast.FuncLit:
			// Closures manage their own locks; analyzed separately if
			// ever needed. Skip to avoid cross-scope confusion.
			return false
		}
		return true
	})

	var out []Finding
	for _, acq := range events {
		if acq.unlock || acq.deferred {
			continue
		}
		if ok, msg := releaseIsSafe(p, acq, events, returns); !ok {
			out = append(out, Finding{
				Rule: ruleMutexHygiene, Severity: SeverityError,
				Pos:     p.Fset.Position(acq.pos),
				Message: msg,
			})
		}
	}
	return out
}

// releaseIsSafe finds a matching release for the acquisition and
// checks no return can escape between them.
func releaseIsSafe(p *Package, acq lockEvent, events []lockEvent, returns []token.Pos) (bool, string) {
	verb := "Unlock"
	if acq.kind == readLock {
		verb = "RUnlock"
	}
	// A defer'd unlock of the same lock anywhere in the function is
	// always safe.
	for _, ev := range events {
		if ev.unlock && ev.deferred && ev.key == acq.key && ev.kind == acq.kind {
			return true, ""
		}
	}
	// Otherwise find the first explicit unlock after the acquisition.
	var first token.Pos
	for _, ev := range events {
		if ev.unlock && !ev.deferred && ev.key == acq.key && ev.kind == acq.kind && ev.pos > acq.pos {
			if first == token.NoPos || ev.pos < first {
				first = ev.pos
			}
		}
	}
	if first == token.NoPos {
		return false, fmt.Sprintf("%s.%s acquired but never released in this function; add defer %s.%s()",
			acq.key, lockVerb(acq.kind), acq.key, verb)
	}
	for _, ret := range returns {
		if ret > acq.pos && ret < first {
			return false, fmt.Sprintf("return between %s.%s and %s.%s can leak the lock; use defer %s.%s()",
				acq.key, lockVerb(acq.kind), acq.key, verb, acq.key, verb)
		}
	}
	return true, ""
}

func lockVerb(k lockKind) string {
	if k == readLock {
		return "RLock"
	}
	return "Lock"
}

// lockCall classifies a call as a mutex acquire/release, keyed by
// the receiver expression text.
func lockCall(p *Package, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	ev := lockEvent{key: exprString(p.Fset, sel.X), pos: call.Pos()}
	switch fn.Name() {
	case "Lock":
		ev.kind = writeLock
	case "RLock":
		ev.kind = readLock
	case "Unlock":
		ev.kind, ev.unlock = writeLock, true
	case "RUnlock":
		ev.kind, ev.unlock = readLock, true
	default:
		return lockEvent{}, false
	}
	return ev, true
}
