package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/reliable-cda/cda/internal/analysis/typestate"
)

// FsyncOrder checks the durable-write protocol as a typestate: a file
// opened from a path variable (the temp file of a write-temp → fsync
// → rename sequence) must reach Sync() after its last write before
// any os.Rename of that path executes. A rename reachable while the
// file still has unsynced writes can publish a name whose content is
// not yet on disk — exactly the crash window the session store's WAL
// and snapshot machinery exist to close. The analysis is per path:
// writing marks the file dirty, Sync() cleans it, and a branch that
// skips the Sync (or a deleted Sync call) is flagged at the rename.
// Handing the file to another function is treated as a write, since
// the callee's writes are invisible here.
var FsyncOrder = &Analyzer{
	Name:     ruleFsyncOrder,
	Doc:      "an os.Rename reachable while the renamed file has unsynced writes (durable-write protocol violation)",
	Severity: SeverityError,
	Run:      runFsyncOrder,
}

// foDirty: the file has writes not yet covered by a Sync on this path.
const foDirty typestate.Facts = 1 << iota

// foKey is one tracked file-open site.
type foKey struct {
	obj  types.Object
	pos  token.Pos
	name string
}

func runFsyncOrder(p *Package) []Finding {
	var out []Finding
	for _, fb := range funcBodies(p) {
		out = append(out, fsyncOrderBody(p, fb)...)
	}
	return out
}

func fsyncOrderBody(p *Package, fb funcBody) []Finding {
	fileKeys := map[types.Object][]foKey{} // file object → open sites
	pathKeys := map[types.Object][]foKey{} // path variable → files opened from it
	var out []Finding
	reported := map[token.Pos]bool{}

	cfg := buildCFG(p, fb.body)
	typestate.Forward(cfg, typestate.Analysis{
		Transfer: func(n ast.Node, s typestate.State) {
			if as, ok := n.(*ast.AssignStmt); ok {
				if fileObj, pathObj, name, pos, ok := fsyncOpenCall(p, as); ok {
					k := foKey{obj: fileObj, pos: pos, name: name}
					s[k] = 0 // tracked, no unsynced writes yet
					fileKeys[fileObj] = append(fileKeys[fileObj], k)
					if pathObj != nil {
						pathKeys[pathObj] = append(pathKeys[pathObj], k)
					}
				}
			}
			typestate.InspectNoFuncLit(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				// os.Rename(path, dst): flag if any file opened from
				// path can still be dirty here.
				if calleeFullName(p, call) == "os.Rename" && len(call.Args) > 0 {
					if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if obj := p.Info.Uses[id]; obj != nil {
							for _, k := range pathKeys[obj] {
								if facts, live := s[k]; live && facts&foDirty != 0 && !reported[call.Pos()] {
									reported[call.Pos()] = true
									out = append(out, Finding{
										Rule: ruleFsyncOrder, Severity: SeverityError,
										Pos: p.Fset.Position(call.Pos()),
										Message: fmt.Sprintf("rename of %s is reachable while %s has unsynced writes; call %s.Sync() before renaming",
											id.Name, k.name, k.name),
									})
								}
							}
						}
					}
					return true
				}
				// Method calls on a tracked file: writes dirty it,
				// Sync cleans it, everything else is neutral.
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if obj := p.Info.Uses[id]; obj != nil && len(fileKeys[obj]) > 0 {
							switch {
							case sel.Sel.Name == "Sync":
								for _, k := range fileKeys[obj] {
									s.Map(k, func(f typestate.Facts) typestate.Facts { return f &^ foDirty })
								}
							case strings.HasPrefix(sel.Sel.Name, "Write") || sel.Sel.Name == "ReadFrom" || sel.Sel.Name == "Truncate":
								for _, k := range fileKeys[obj] {
									s.Map(k, func(f typestate.Facts) typestate.Facts { return f | foDirty })
								}
							}
							return true
						}
					}
				}
				// A tracked file passed to another call: unknown
				// writes happen there; treat as dirtying.
				for _, arg := range call.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if obj := p.Info.Uses[id]; obj != nil {
							for _, k := range fileKeys[obj] {
								s.Map(k, func(f typestate.Facts) typestate.Facts { return f | foDirty })
							}
						}
					}
				}
				return true
			})
		},
	})
	return out
}

// fsyncOpenCall matches `f, err := os.Create/OpenFile/Open(path, ...)`
// and returns the file object plus the path variable's object when
// the path argument is an identifier (needed to associate a later
// os.Rename of the same variable).
func fsyncOpenCall(p *Package, as *ast.AssignStmt) (fileObj, pathObj types.Object, name string, pos token.Pos, ok bool) {
	if len(as.Lhs) != 2 || len(as.Rhs) != 1 {
		return nil, nil, "", token.NoPos, false
	}
	call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !isCall {
		return nil, nil, "", token.NoPos, false
	}
	switch calleeFullName(p, call) {
	case "os.Create", "os.OpenFile", "os.Open":
	default:
		return nil, nil, "", token.NoPos, false
	}
	id, isIdent := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !isIdent || isBlank(id) {
		return nil, nil, "", token.NoPos, false
	}
	fileObj = p.Info.ObjectOf(id)
	if fileObj == nil {
		return nil, nil, "", token.NoPos, false
	}
	if len(call.Args) > 0 {
		if pid, isIdent := ast.Unparen(call.Args[0]).(*ast.Ident); isIdent {
			pathObj = p.Info.Uses[pid]
		}
	}
	return fileObj, pathObj, id.Name, call.Pos(), true
}
