package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// DroppedError flags error values that are silently discarded: a
// call used as a bare statement whose results include an error, and
// assignments that blank an error-typed result with `_`. Silently
// dropped errors on grounding and provenance paths are exactly how a
// reliable-by-construction pipeline degrades into a hopeful one (P4
// Soundness), so every discard must be explicit and justified.
//
// Writes to in-memory sinks that are documented never to fail
// (strings.Builder, bytes.Buffer — including through fmt.Fprint*)
// are exempt.
var DroppedError = &Analyzer{
	Name:     ruleDroppedError,
	Doc:      "error-typed return values discarded via _ or an unused call result",
	Severity: SeverityError,
	Run:      runDroppedError,
}

func runDroppedError(p *Package) []Finding {
	var out []Finding
	for _, fd := range funcDecls(p) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if idx := errorResultIndex(p, call); idx >= 0 && !infallibleCall(p, call) {
					out = append(out, Finding{
						Rule: ruleDroppedError, Severity: SeverityError,
						Pos: p.Fset.Position(call.Pos()),
						Message: fmt.Sprintf("result %d of %s is an ignored error; handle or explicitly discard it",
							idx, callName(p, call)),
					})
				}
			case *ast.AssignStmt:
				out = append(out, blankedErrors(p, st)...)
			}
			return true
		})
	}
	return out
}

// callName names the callee for messages.
func callName(p *Package, call *ast.CallExpr) string {
	if fn := calleeFunc(p, call); fn != nil {
		return fn.Name()
	}
	return exprString(p.Fset, call.Fun)
}

// errorResultIndex returns the index of the first error-typed result
// of the call, or -1.
func errorResultIndex(p *Package, call *ast.CallExpr) int {
	tv, ok := p.Info.Types[call]
	if !ok {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if isErrorType(t) {
			return 0
		}
	}
	return -1
}

// blankedErrors flags `_`-assignments whose corresponding value is
// an error produced by a call in the same statement. Blanking an
// already-captured variable (e.g. `_ = err` to silence unused) is
// left alone — the error was at least visible at its origin.
func blankedErrors(p *Package, st *ast.AssignStmt) []Finding {
	var out []Finding
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// x, _ := f() — tuple-producing call.
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok || infallibleCall(p, call) {
			return nil
		}
		tup, ok := p.Info.Types[call].Type.(*types.Tuple)
		if !ok || tup.Len() != len(st.Lhs) {
			return nil
		}
		for i, lhs := range st.Lhs {
			if isBlank(lhs) && isErrorType(tup.At(i).Type()) {
				out = append(out, Finding{
					Rule: ruleDroppedError, Severity: SeverityError,
					Pos: p.Fset.Position(lhs.Pos()),
					Message: fmt.Sprintf("error result of %s discarded with _; handle it or name the reason",
						callName(p, call)),
				})
			}
		}
		return out
	}
	for i := range st.Lhs {
		if i >= len(st.Rhs) || !isBlank(st.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr)
		if !ok || infallibleCall(p, call) {
			continue
		}
		if tv, ok := p.Info.Types[call]; ok && isErrorType(tv.Type) {
			out = append(out, Finding{
				Rule: ruleDroppedError, Severity: SeverityError,
				Pos: p.Fset.Position(st.Lhs[i].Pos()),
				Message: fmt.Sprintf("error result of %s discarded with _; handle it or name the reason",
					callName(p, call)),
			})
		}
	}
	return out
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// infallibleSinks are types whose Write* methods are documented to
// always return a nil error.
func infallibleSink(t types.Type) bool {
	path, name := namedPathName(t)
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}

// infallibleCall exempts writes that cannot fail: methods on
// strings.Builder / bytes.Buffer, and fmt.Fprint* whose destination
// is such a sink.
func infallibleCall(p *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if infallibleSink(sig.Recv().Type()) {
			return true
		}
	}
	full := fn.FullName()
	switch full {
	case "fmt.Print", "fmt.Printf", "fmt.Println":
		// Console output: a write error to stdout is not actionable.
		return true
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		if len(call.Args) > 0 {
			if tv, ok := p.Info.Types[call.Args[0]]; ok && infallibleSink(tv.Type) {
				return true
			}
			if isStdStream(p, call.Args[0]) {
				return true
			}
		}
	}
	return false
}

// isStdStream matches os.Stdout / os.Stderr destinations, whose
// write errors are as unactionable as fmt.Print's.
func isStdStream(p *Package, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr")
}
