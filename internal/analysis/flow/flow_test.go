package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadUnit type-checks one synthetic source file into a Unit. The
// sources deliberately avoid imports so no importer is needed.
func loadUnit(t *testing.T, src string) *Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return &Unit{Path: "fixture", Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info}
}

// fnByName finds a graph node by its short name ("f", "T.m").
func fnByName(t *testing.T, g *Graph, name string) *types.Func {
	t.Helper()
	for fn := range g.Funcs {
		short := fn.Name()
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if n, ok := rt.(*types.Named); ok {
				short = n.Obj().Name() + "." + fn.Name()
			}
		}
		if short == name {
			return fn
		}
	}
	t.Fatalf("function %q not found in graph", name)
	return nil
}

// edgesTo lists the callees of caller filtered by kind.
func edgesTo(g *Graph, caller *types.Func, kind EdgeKind) []string {
	var out []string
	for _, e := range g.Edges[caller] {
		if e.Kind == kind {
			out = append(out, e.Callee.Name())
		}
	}
	return out
}

func has(list []string, name string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

func TestCallGraphConstruction(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		caller string
		callee string
		kind   EdgeKind
	}{
		{
			name: "static function call",
			src: `package fixture
func a() { b() }
func b() {}`,
			caller: "a", callee: "b", kind: EdgeStatic,
		},
		{
			name: "static method call",
			src: `package fixture
type T struct{}
func (t *T) m() {}
func a(t *T) { t.m() }`,
			caller: "a", callee: "m", kind: EdgeStatic,
		},
		{
			name: "interface dispatch",
			src: `package fixture
type I interface{ M() }
type T struct{}
func (T) M() {}
func a(i I) { i.M() }`,
			caller: "a", callee: "M", kind: EdgeInterface,
		},
		{
			name: "method value reference",
			src: `package fixture
type T struct{}
func (t *T) m() {}
func a(t *T) { f := t.m; _ = f }`,
			caller: "a", callee: "m", kind: EdgeRef,
		},
		{
			name: "function value reference",
			src: `package fixture
func b() {}
func a() { f := b; _ = f }`,
			caller: "a", callee: "b", kind: EdgeRef,
		},
		{
			name: "call inside closure folds into declarer",
			src: `package fixture
func b() {}
func a() { f := func() { b() }; f() }`,
			caller: "a", callee: "b", kind: EdgeStatic,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := BuildGraph([]*Unit{loadUnit(t, tc.src)})
			caller := fnByName(t, g, tc.caller)
			if got := edgesTo(g, caller, tc.kind); !has(got, tc.callee) {
				t.Errorf("edges(%s, kind=%d) = %v, want %q", tc.caller, tc.kind, got, tc.callee)
			}
		})
	}
}

func TestInterfaceImplResolution(t *testing.T) {
	src := `package fixture
type I interface{ M() }
type A struct{}
func (A) M() {}
type B struct{}
func (*B) M() {}
type C struct{}
func a(i I) { i.M() }`
	g := BuildGraph([]*Unit{loadUnit(t, src)})
	caller := fnByName(t, g, "a")
	var ifaceMethod *types.Func
	for _, e := range g.Edges[caller] {
		if e.Kind == EdgeInterface {
			ifaceMethod = e.Callee
		}
	}
	if ifaceMethod == nil {
		t.Fatal("no interface edge recorded")
	}
	impls := g.Impls[ifaceMethod]
	if len(impls) != 2 {
		t.Fatalf("Impls = %d methods, want 2 (A.M value receiver, B.M pointer receiver)", len(impls))
	}
	names := map[string]bool{}
	for _, m := range impls {
		sig := m.Type().(*types.Signature)
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		names[rt.(*types.Named).Obj().Name()] = true
	}
	if !names["A"] || !names["B"] {
		t.Errorf("impl receivers = %v, want A and B", names)
	}
	// The reverse index must reach the implementations too.
	am := fnByName(t, g, "A.M")
	found := false
	for _, e := range g.Callers[am] {
		if e.Caller == caller {
			found = true
		}
	}
	if !found {
		t.Error("Callers[A.M] does not include the interface call site in a")
	}
}

func TestSummariesMutualRecursion(t *testing.T) {
	// f and g bounce the value between each other before returning
	// it; the fixed point must converge with ParamToReturn set on
	// both, and terminate.
	src := `package fixture
func f(x int, depth int) int {
	if depth > 0 {
		return g(x, depth-1)
	}
	return x
}
func g(x int, depth int) int {
	if depth > 0 {
		return f(x, depth-1)
	}
	return x
}
func opaque(x int) int { return 0 }
func h(x int) int { return opaque(1) }`
	g := BuildGraph([]*Unit{loadUnit(t, src)})
	sums := g.Summaries()
	for _, name := range []string{"f", "g"} {
		fn := fnByName(t, g, name)
		if !sums[fn].ParamToReturn[0] {
			t.Errorf("%s: ParamToReturn[0] = false, want true (mutual recursion)", name)
		}
	}
	// h's return derives from a constant through opaque, not from x.
	h := fnByName(t, g, "h")
	if sums[h].ParamToReturn[0] {
		t.Error("h: ParamToReturn[0] = true, but x never reaches the return")
	}
}

func TestSummariesMutableParamWriteback(t *testing.T) {
	src := `package fixture
func fill(dst *string, v string) { *dst = v }
func pure(v string) string { return v }`
	g := BuildGraph([]*Unit{loadUnit(t, src)})
	sums := g.Summaries()
	fill := fnByName(t, g, "fill")
	if !sums[fill].TaintsParam[0] {
		t.Error("fill: TaintsParam[0] = false, want true (*dst = v)")
	}
	pure := fnByName(t, g, "pure")
	if sums[pure].TaintsParam[0] {
		t.Error("pure: TaintsParam[0] = true, want false")
	}
}

func TestTaintPropagation(t *testing.T) {
	src := `package fixture
func source() string { return "secret" }
func wrap(s string) string { return s + "!" }
func tainted() string {
	v := source()
	return wrap(v)
}
func clean() string {
	return wrap("ok")
}
func launder(dst *string) {
	*dst = source()
}
func viaWriteback() string {
	var s string
	launder(&s)
	return s
}`
	g := BuildGraph([]*Unit{loadUnit(t, src)})
	taint := g.Propagate(func(fn *types.Func) bool { return fn.Name() == "source" })
	for name, want := range map[string]bool{
		"tainted":      true,
		"clean":        false, // wrap("ok") must not inherit taint from tainted()'s wrap(v)
		"viaWriteback": true,  // taint surfaces through launder's *dst write-back
		"source":       false, // sources taint call results in callers, not their own body
	} {
		fn := fnByName(t, g, name)
		if got := taint.ReturnTainted[fn]; got != want {
			t.Errorf("ReturnTainted[%s] = %v, want %v", name, got, want)
		}
	}
	// wrap's parameter receives tainted data from tainted(), but its
	// return stays argument-dependent: ReturnTainted must NOT flip, or
	// every caller of wrap would be poisoned by one tainted caller.
	wrap := fnByName(t, g, "wrap")
	if !taint.ParamTainted[wrap][0] {
		t.Error("ParamTainted[wrap][0] = false, want true (called with tainted v)")
	}
	if taint.ReturnTainted[wrap] {
		t.Error("ReturnTainted[wrap] = true, want false (taint is argument-dependent)")
	}
}

func TestFuncOf(t *testing.T) {
	src := `package fixture
func a() { b() }
func b() {}`
	u := loadUnit(t, src)
	g := BuildGraph([]*Unit{u})
	a := fnByName(t, g, "a")
	var callPos token.Pos
	ast.Inspect(g.Funcs[a].Decl, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			callPos = c.Pos()
		}
		return true
	})
	if got := g.FuncOf(u, callPos); got != a {
		t.Errorf("FuncOf(call site) = %v, want a", got)
	}
}

// TestDeterministicImplOrder guards the sort in resolveInterfaces:
// repeated builds must list implementations in the same order.
func TestDeterministicImplOrder(t *testing.T) {
	src := `package fixture
type I interface{ M() }
type A struct{}
func (A) M() {}
type B struct{}
func (B) M() {}
type C struct{}
func (C) M() {}
func a(i I) { i.M() }`
	var first string
	for i := 0; i < 5; i++ {
		g := BuildGraph([]*Unit{loadUnit(t, src)})
		caller := fnByName(t, g, "a")
		var im *types.Func
		for _, e := range g.Edges[caller] {
			if e.Kind == EdgeInterface {
				im = e.Callee
			}
		}
		var names []string
		for _, m := range g.Impls[im] {
			sig := m.Type().(*types.Signature)
			rt := sig.Recv().Type()
			names = append(names, rt.(*types.Named).Obj().Name())
		}
		order := strings.Join(names, ",")
		if i == 0 {
			first = order
			continue
		}
		if order != first {
			t.Fatalf("impl order changed between builds: %q vs %q", order, first)
		}
	}
}
