package flow

import (
	"go/ast"
	"go/types"
	"sort"
)

// BuildGraph constructs the module call graph over the given units:
// every function declaration becomes a node; call expressions become
// static or interface edges; function and method values referenced
// outside call position become EdgeRef edges; and interface methods
// are resolved to the concrete methods of implementing named types
// found among the units.
func BuildGraph(units []*Unit) *Graph {
	g := &Graph{
		Units:   units,
		Funcs:   map[*types.Func]*FuncInfo{},
		Edges:   map[*types.Func][]Edge{},
		Callers: map[*types.Func][]Edge{},
		Impls:   map[*types.Func][]*types.Func{},
	}
	for _, u := range units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Funcs[fn] = &FuncInfo{Fn: fn, Decl: fd, Unit: u}
			}
		}
	}
	g.resolveInterfaces()
	for fn, info := range g.Funcs {
		g.addEdges(fn, info)
	}
	for _, edges := range g.Edges {
		for _, e := range edges {
			g.Callers[e.Callee] = append(g.Callers[e.Callee], e)
			if e.Kind == EdgeInterface {
				// An interface call also reaches every known
				// implementation; record the indirection for reverse
				// propagation.
				for _, impl := range g.Impls[e.Callee] {
					g.Callers[impl] = append(g.Callers[impl], Edge{
						Caller: e.Caller, Callee: impl, Site: e.Site, Kind: EdgeInterface,
					})
				}
			}
		}
	}
	return g
}

// resolveInterfaces maps every interface method that appears in the
// units to the methods of named types (and their pointer receivers)
// that implement the interface.
func (g *Graph) resolveInterfaces() {
	var named []*types.Named
	var ifaces []*types.Named
	seen := map[*types.TypeName]bool{}
	for _, u := range g.Units {
		scope := u.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || seen[tn] {
				continue
			}
			seen[tn] = true
			n, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(n) {
				ifaces = append(ifaces, n)
			} else {
				named = append(named, n)
			}
		}
	}
	// Deterministic resolution order keeps Impls slices stable.
	sort.Slice(named, func(i, j int) bool { return typeKey(named[i]) < typeKey(named[j]) })
	for _, in := range ifaces {
		iface, ok := in.Underlying().(*types.Interface)
		if !ok || iface.NumMethods() == 0 {
			continue
		}
		for _, n := range named {
			impl := types.Type(n)
			if !types.Implements(impl, iface) {
				if p := types.NewPointer(n); types.Implements(p, iface) {
					impl = p
				} else {
					continue
				}
			}
			for i := 0; i < iface.NumMethods(); i++ {
				im := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(impl, true, im.Pkg(), im.Name())
				if m, ok := obj.(*types.Func); ok {
					g.Impls[im] = appendUniqueFunc(g.Impls[im], m)
				}
			}
		}
	}
}

func typeKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

func appendUniqueFunc(s []*types.Func, fn *types.Func) []*types.Func {
	for _, have := range s {
		if have == fn {
			return s
		}
	}
	return append(s, fn)
}

// addEdges walks one function body (function literals inside it are
// folded into the declaring function) and records call and reference
// edges.
func (g *Graph) addEdges(fn *types.Func, info *FuncInfo) {
	u := info.Unit
	// Idents that are the operator of a call — excluded from EdgeRef.
	callFuns := map[*ast.Ident]bool{}
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callFuns[fun] = true
		case *ast.SelectorExpr:
			callFuns[fun.Sel] = true
		}
		callee := calleeOf(u.Info, call)
		if callee == nil {
			return true
		}
		kind := EdgeStatic
		if isInterfaceMethod(callee) {
			kind = EdgeInterface
		}
		g.Edges[fn] = append(g.Edges[fn], Edge{Caller: fn, Callee: callee, Site: call, Kind: kind})
		return true
	})
	// Method values and function references: a *types.Func used as a
	// value may be invoked later; record a conservative EdgeRef.
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callFuns[id] {
			return true
		}
		ref, ok := u.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		kind := EdgeRef
		if isInterfaceMethod(ref) {
			kind = EdgeInterface
		}
		g.Edges[fn] = append(g.Edges[fn], Edge{Caller: fn, Callee: ref, Site: id, Kind: kind})
		return true
	})
}

// CalleesOf returns the possible concrete targets of an edge: the
// static callee itself, or the known implementations for an interface
// edge (the interface method is included so rules can reason about
// unresolved targets).
func (g *Graph) CalleesOf(e Edge) []*types.Func {
	if e.Kind != EdgeInterface {
		return []*types.Func{e.Callee}
	}
	out := []*types.Func{e.Callee}
	out = append(out, g.Impls[e.Callee]...)
	return out
}
