package flow

import (
	"go/ast"
	"go/types"
)

// Taint is the result of propagating taint from designated source
// calls through the module: per-function tainted value nodes, plus
// the interprocedural return/parameter bits the worklist converged on.
type Taint struct {
	g        *Graph
	isSource func(*types.Func) bool
	// tainted holds, per function, the value nodes carrying
	// source-derived data from any route — tainted parameters
	// included. Rules consult this set at sinks.
	tainted map[*types.Func]map[node]bool
	// noParam holds the argument-independent subset: taint reachable
	// without seeding any parameter. It drives ReturnTainted, so a
	// function whose return depends only on its arguments does not
	// poison every call site once one caller feeds it taint
	// (argument-dependent flow is handled per call site through
	// Summary.ParamToReturn instead).
	noParam map[*types.Func]map[node]bool
	// ReturnTainted marks functions whose return values carry
	// source-derived data regardless of what the caller passes in.
	ReturnTainted map[*types.Func]bool
	// ParamTainted marks parameters (index -1 = receiver) that may
	// receive source-derived data from some caller.
	ParamTainted map[*types.Func]map[int]bool
}

// Propagate runs the interprocedural taint fixed point: results of
// calls for which isSource returns true are tainted; taint flows
// through intra-function derivation edges, through callee returns
// (via summaries), into callee parameters at call sites, and back out
// through pointer-like parameters the callee writes into. The
// worklist converges because taint bits only ever turn on.
func (g *Graph) Propagate(isSource func(*types.Func) bool) *Taint {
	t := &Taint{
		g:             g,
		isSource:      isSource,
		tainted:       map[*types.Func]map[node]bool{},
		noParam:       map[*types.Func]map[node]bool{},
		ReturnTainted: map[*types.Func]bool{},
		ParamTainted:  map[*types.Func]map[int]bool{},
	}
	flows := g.flows()
	g.Summaries() // ensure ParamToReturn is converged before seeding
	for fn := range flows {
		t.tainted[fn] = map[node]bool{}
		t.noParam[fn] = map[node]bool{}
		t.ParamTainted[fn] = map[int]bool{}
	}
	// Seed every function once, then iterate to global convergence.
	work := map[*types.Func]bool{}
	for fn := range flows {
		work[fn] = true
	}
	for len(work) > 0 {
		var fn *types.Func
		for f := range work {
			fn = f
			break
		}
		delete(work, fn)
		t.processFunc(fn, flows[fn], work)
	}
	return t
}

// sourceCall reports whether the call site's results are taint
// sources, considering interface implementations.
func (t *Taint) sourceCall(cs *callSite) bool {
	if cs.callee == nil {
		return false
	}
	for _, target := range t.g.CalleesOf(Edge{Callee: cs.callee, Kind: edgeKindOf(cs)}) {
		if t.isSource(target) {
			return true
		}
	}
	return false
}

func edgeKindOf(cs *callSite) EdgeKind {
	if cs.iface {
		return EdgeInterface
	}
	return EdgeStatic
}

// processFunc recomputes one function's two tainted sets — the full
// set (tainted parameters included) and the argument-independent set —
// and pushes any newly discovered interprocedural facts onto the
// worklist.
func (t *Taint) processFunc(fn *types.Func, ff *funcFlow, work map[*types.Func]bool) {
	if ff == nil {
		return
	}
	full, np := t.tainted[fn], t.noParam[fn]
	for idx, obj := range ff.params {
		if t.ParamTainted[fn][idx] {
			full[obj] = true
		}
	}
	for _, cs := range ff.calls {
		if t.sourceCall(cs) {
			full[cs.call] = true
			np[cs.call] = true
		}
	}
	t.iterate(ff, full) // full growth surfaces via the ParamTainted export below
	grewNP := t.iterate(ff, np)
	// Export: the return is tainted only when the argument-independent
	// set reaches it; argument-dependent flow surfaces at each call
	// site through ParamToReturn instead.
	retFlip := false
	if np[ff.ret()] && !t.ReturnTainted[fn] {
		t.ReturnTainted[fn] = true
		retFlip = true
	}
	// Callers read our noParam set (write-backs) and ReturnTainted.
	if grewNP || retFlip {
		for _, e := range t.g.Callers[fn] {
			work[e.Caller] = true
		}
	}
	// Export: tainted arguments become tainted callee parameters.
	for _, cs := range ff.calls {
		for _, target := range t.callTargetsWithBodies(cs) {
			tf := t.g.flows()[target]
			for idx := range tf.params {
				if t.ParamTainted[target][idx] {
					continue
				}
				if argNodesTainted(cs, idx, full) {
					t.ParamTainted[target][idx] = true
					work[target] = true
				}
			}
		}
	}
}

// iterate runs intra-function propagation over one tainted set,
// interleaved with call-result and call-writeback rules, until stable.
// It reports whether the set grew.
func (t *Taint) iterate(ff *funcFlow, set map[node]bool) bool {
	before := len(set)
	for changed := true; changed; {
		changed = false
		mark := func(n node) {
			if !set[n] {
				set[n] = true
				changed = true
			}
		}
		for src, dsts := range ff.edges {
			if !set[src] {
				continue
			}
			for _, d := range dsts {
				mark(d)
			}
		}
		for _, cs := range ff.calls {
			t.applyCallRules(cs, set, mark)
		}
	}
	return len(set) > before
}

// applyCallRules marks the call's result node tainted when (a) a
// tainted value can flow through the callee to its return, or (b) the
// callee's own return is tainted independent of arguments; and taints
// caller-side argument objects the callee writes tainted data into.
func (t *Taint) applyCallRules(cs *callSite, set map[node]bool, mark func(node)) {
	targets := t.callTargetsWithBodies(cs)
	anyArgTainted := func() bool {
		for i := -1; i < len(cs.args); i++ {
			if argNodesTainted(cs, i, set) {
				return true
			}
		}
		return false
	}
	if len(targets) == 0 {
		// Unknown callee (stdlib, builtin, func value): pass-through —
		// tainted in, tainted out. strings.Join(tainted, ...) stays
		// tainted; a pure stdlib call over clean values stays clean.
		if cs.callee == nil || !t.isSource(cs.callee) {
			if anyArgTainted() {
				mark(cs.call)
			}
		}
		return
	}
	sums := t.g.Summaries()
	for _, target := range targets {
		if t.ReturnTainted[target] {
			mark(cs.call)
		}
		s := sums[target]
		if s == nil {
			if anyArgTainted() {
				mark(cs.call)
			}
			continue
		}
		for i, flows := range s.ParamToReturn {
			if flows && argNodesTainted(cs, i, set) {
				mark(cs.call)
			}
		}
		// Write-back: the callee stores tainted data into a mutable
		// parameter; the caller's argument object is now tainted. The
		// taint must be argument-independent (callee's noParam set) or
		// enter through this very call site — otherwise one tainted
		// caller would poison every other caller's arguments.
		tf := t.g.flows()[target]
		for idx, obj := range tf.params {
			if !s.TaintsParam[idx] {
				continue
			}
			if !t.noParam[target][obj] && !anyArgTainted() {
				continue
			}
			for _, n := range argRoots(cs, idx) {
				mark(n)
			}
		}
	}
}

// callTargetsWithBodies resolves a call to targets that have declared
// bodies among the units.
func (t *Taint) callTargetsWithBodies(cs *callSite) []*types.Func {
	var out []*types.Func
	if cs.callee == nil {
		return nil
	}
	for _, target := range t.g.CalleesOf(Edge{Callee: cs.callee, Kind: edgeKindOf(cs)}) {
		if _, ok := t.g.Funcs[target]; ok {
			out = append(out, target)
		}
	}
	return out
}

// argNodesTainted reports whether any value node of argument idx
// (-1 = receiver) is tainted.
func argNodesTainted(cs *callSite, idx int, set map[node]bool) bool {
	var nodes []node
	if idx == -1 {
		nodes = cs.recv
	} else if idx < len(cs.args) {
		nodes = cs.args[idx]
	}
	for _, n := range nodes {
		if set[n] {
			return true
		}
	}
	return false
}

// argRoots returns the object nodes of argument idx that a callee
// write-back can reach. Every variable the argument mentions counts:
// TaintsParam is only set for pointer-like parameters, so the argument
// is an address (&s) or pointer-valued expression whose base variable
// the callee writes through — the base's own type (e.g. string for &s)
// says nothing about writability.
func argRoots(cs *callSite, idx int) []node {
	var nodes []node
	if idx == -1 {
		nodes = cs.recv
	} else if idx < len(cs.args) {
		nodes = cs.args[idx]
	}
	var out []node
	for _, n := range nodes {
		if v, ok := n.(*types.Var); ok {
			out = append(out, v)
		}
	}
	return out
}

// ExprTainted reports whether any value the expression reads is
// tainted in fn.
func (t *Taint) ExprTainted(fn *types.Func, e ast.Expr) bool {
	info := t.g.Funcs[fn]
	if info == nil {
		return false
	}
	set := t.tainted[fn]
	for _, n := range mentionNodes(info.Unit.Info, e) {
		if set[n] {
			return true
		}
	}
	// A direct source (or tainted-return) call used inline as the
	// expression itself.
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if set[call] {
				found = true
			}
		}
		return true
	})
	return found
}

// ObjTainted reports whether the object carries tainted data in fn.
func (t *Taint) ObjTainted(fn *types.Func, obj types.Object) bool {
	return t.tainted[fn][obj]
}
