// Package flow implements the interprocedural layer under cdalint: a
// module-wide call graph (static dispatch plus interface-method
// resolution over the loaded packages) and a function-summary dataflow
// engine that computes, by fixed-point iteration over the call graph,
// which parameters reach which calls and returns, and how taint
// introduced at designated source calls propagates through the module.
//
// Like the rest of the analysis suite it is built purely on go/ast and
// go/types — no golang.org/x/tools. That buys portability at the price
// of documented soundness limits (see DESIGN.md "Dataflow engine"):
//
//   - reflection and code reached only through reflect is invisible;
//   - function values stored in struct fields or maps are not resolved
//     to their targets (direct function-valued variables and method
//     values ARE tracked as reference edges);
//   - goroutine interleavings are not modeled — a call is a call
//     whether synchronous or `go`-spawned;
//   - flow inside a function is object-granular and flow-insensitive:
//     writing one field of a struct taints the whole object.
//
// The engine deliberately over-approximates: for rules that forbid a
// flow (provenance-taint, lock-flow) this errs toward reporting, and
// the cdalint:ignore directive is the documented escape hatch.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Unit is one type-checked package handed to the engine. It mirrors
// the loader's package shape without importing it, so the package
// stays dependency-free and testable on synthetic inputs.
type Unit struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FuncInfo is one function or method declaration with a body.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Unit *Unit
}

// EdgeKind classifies how a call-graph edge was established.
type EdgeKind int

const (
	// EdgeStatic is a direct call of a declared function or method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a call through an interface method; the callee
	// is the interface method, with concrete targets in Graph.Impls.
	EdgeInterface
	// EdgeRef marks a function or method referenced as a value
	// (method value, function assigned to a variable); the engine
	// assumes the enclosing function may invoke it.
	EdgeRef
)

// Edge is one resolved caller→callee relationship.
type Edge struct {
	Caller *types.Func
	Callee *types.Func
	Site   ast.Node
	Kind   EdgeKind
}

// Graph is the module call graph plus the per-function summaries.
type Graph struct {
	Units []*Unit
	// Funcs maps every declared function with a body to its info.
	Funcs map[*types.Func]*FuncInfo
	// Edges lists outgoing edges per caller, in source order.
	Edges map[*types.Func][]Edge
	// Callers lists incoming edges per callee (including interface
	// methods and EdgeRef targets).
	Callers map[*types.Func][]Edge
	// Impls resolves an interface method to the concrete methods of
	// implementing types found among the units.
	Impls map[*types.Func][]*types.Func

	summaries map[*types.Func]*Summary
	flowCache map[*types.Func]*funcFlow
}

// FuncOf returns the declared function enclosing pos, or nil. It is a
// convenience for rules that need to map a finding site back to its
// call-graph node.
func (g *Graph) FuncOf(u *Unit, pos token.Pos) *types.Func {
	for fn, info := range g.Funcs {
		if info.Unit == u && info.Decl.Pos() <= pos && pos <= info.Decl.End() {
			return fn
		}
	}
	return nil
}

// objOf resolves an identifier to its object through Uses then Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// funcObj resolves an identifier to a *types.Func, or nil.
func funcObj(info *types.Info, id *ast.Ident) *types.Func {
	fn, _ := objOf(info, id).(*types.Func)
	return fn
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// calleeOf resolves the called function of a call expression, or nil
// for builtins, conversions, and calls of function-typed values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return funcObj(info, fun)
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
