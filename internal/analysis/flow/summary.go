package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// node is one value-flow vertex inside a function: a *types.Var (local,
// parameter, receiver, named result), a *ast.CallExpr (the call's
// results), or the per-function return sentinel.
type node any

// retSentinel is the unique "flows out through a return" vertex.
type retSentinel struct{ fn *types.Func }

// Summary is the per-function dataflow summary rules consume. The
// receiver is parameter index -1.
type Summary struct {
	Fn *types.Func
	// ParamToReturn reports which parameters can reach a return value,
	// transitively through callees (fixed-point over the call graph).
	ParamToReturn map[int]bool
	// TaintsParam reports pointer-like parameters the function may
	// write data into (so taint entering any parameter can surface in
	// the caller's argument object).
	TaintsParam map[int]bool
}

// funcFlow is the intra-function flow graph: object-granular,
// flow-insensitive derivation edges plus the call sites that splice
// functions together during fixed-point iteration.
type funcFlow struct {
	fn    *types.Func
	info  *FuncInfo
	edges map[node][]node // src → values derived from it
	calls []*callSite
	// params maps parameter index (-1 = receiver) to its object.
	params map[int]types.Object
}

type callSite struct {
	call   *ast.CallExpr
	callee *types.Func // nil for builtins/func values
	iface  bool
	// args[i] holds the value nodes mentioned by argument i; recv the
	// nodes of the method receiver expression (index -1).
	args [][]node
	recv []node
}

// ret returns the function's return sentinel.
func (ff *funcFlow) ret() node { return retSentinel{ff.fn} }

func (ff *funcFlow) addEdge(from, to node) {
	if from == nil || to == nil || from == to {
		return
	}
	for _, have := range ff.edges[from] {
		if have == to {
			return
		}
	}
	ff.edges[from] = append(ff.edges[from], to)
}

// mentionNodes collects the value nodes an expression reads: variable
// objects and call expressions. Function literals are skipped — a
// closure passed as a value does not hand its captured state to the
// callee at the call site; its own statements are processed separately
// because they live in the same declaration body.
func mentionNodes(info *types.Info, e ast.Expr) []node {
	var out []node
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			out = append(out, n)
			return true
		case *ast.Ident:
			if v, ok := objOf(info, n).(*types.Var); ok {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// rootObj resolves the object an assignable or address expression
// reaches: x, x.f, x[i], *x, &x, and chains thereof all root at x.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := objOf(info, t).(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.UnaryExpr:
			if t.Op != token.AND {
				return nil
			}
			e = t.X
		default:
			return nil
		}
	}
}

// buildFlow constructs the intra-function flow graph for one declared
// function.
func buildFlow(fn *types.Func, info *FuncInfo) *funcFlow {
	u := info.Unit
	ff := &funcFlow{
		fn:     fn,
		info:   info,
		edges:  map[node][]node{},
		params: map[int]types.Object{},
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		ff.params[-1] = recv
	}
	for i := 0; i < sig.Params().Len(); i++ {
		ff.params[i] = sig.Params().At(i)
	}
	// Named results always feed the return sentinel (naked returns).
	if info.Decl.Type.Results != nil {
		for _, field := range info.Decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := u.Info.Defs[name]; obj != nil {
					ff.addEdge(obj, ff.ret())
				}
			}
		}
	}

	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			ff.assign(u.Info, st.Lhs, st.Rhs)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, name := range st.Names {
				lhs = append(lhs, name)
			}
			ff.assign(u.Info, lhs, st.Values)
		case *ast.RangeStmt:
			src := mentionNodes(u.Info, st.X)
			for _, lhs := range []ast.Expr{st.Key, st.Value} {
				if lhs == nil {
					continue
				}
				if root := rootObj(u.Info, lhs); root != nil {
					for _, s := range src {
						ff.addEdge(s, root)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				for _, s := range mentionNodes(u.Info, res) {
					ff.addEdge(s, ff.ret())
				}
			}
		case *ast.SendStmt:
			if root := rootObj(u.Info, st.Chan); root != nil {
				for _, s := range mentionNodes(u.Info, st.Value) {
					ff.addEdge(s, root)
				}
			}
		case *ast.CallExpr:
			ff.addCall(u.Info, st)
		}
		return true
	})
	return ff
}

// assign records lhs ← rhs derivation edges, handling both pairwise
// assignment and tuple destructuring (v, err := f()).
func (ff *funcFlow) assign(info *types.Info, lhs, rhs []ast.Expr) {
	if len(rhs) == 0 {
		return
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			root := rootObj(info, lhs[i])
			if root == nil {
				continue
			}
			for _, s := range mentionNodes(info, rhs[i]) {
				ff.addEdge(s, root)
			}
		}
		return
	}
	src := mentionNodes(info, rhs[0])
	for _, l := range lhs {
		if root := rootObj(info, l); root != nil {
			for _, s := range src {
				ff.addEdge(s, root)
			}
		}
	}
}

// addCall records one call site: per-argument value nodes, the
// receiver's nodes, and the conservative mutation edges (any value
// passed into a call may end up inside any other argument object the
// callee can write through — e.g. fmt.Fprintf(&sb, tainted)).
func (ff *funcFlow) addCall(info *types.Info, call *ast.CallExpr) {
	cs := &callSite{call: call, callee: calleeOf(info, call)}
	if cs.callee != nil {
		cs.iface = isInterfaceMethod(cs.callee)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isPkg := objOf(info, selRootIdent(sel)).(*types.PkgName); !isPkg || selRootIdent(sel) == nil {
			cs.recv = mentionNodes(info, sel.X)
		}
	}
	var mutable []types.Object
	var all []node
	for _, arg := range call.Args {
		an := mentionNodes(info, arg)
		cs.args = append(cs.args, an)
		all = append(all, an...)
		// Writability is a property of what the callee receives, not of
		// the base variable: &s hands over a *string even though s
		// itself is a plain string.
		argType := info.Types[arg].Type
		if root := rootObj(info, arg); root != nil && argType != nil && mutableKind(argType) {
			mutable = append(mutable, root)
		}
	}
	all = append(all, cs.recv...)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if root := rootObj(info, sel.X); root != nil && mutableKind(root.Type()) {
			mutable = append(mutable, root)
		}
	}
	for _, m := range mutable {
		for _, s := range all {
			ff.addEdge(s, m)
		}
	}
	ff.calls = append(ff.calls, cs)
}

// selRootIdent returns the leftmost identifier of a selector chain.
func selRootIdent(sel *ast.SelectorExpr) *ast.Ident {
	e := ast.Expr(sel)
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = t.X
		case *ast.Ident:
			return t
		default:
			return nil
		}
	}
}

// mutableKind reports whether a value of type t can be written through
// by a callee (pointers, slices, maps, channels, interfaces, and
// strings.Builder-style structs are reached via pointer args anyway).
func mutableKind(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// flows builds (and caches) the intra-function graphs for every
// declared function.
func (g *Graph) flows() map[*types.Func]*funcFlow {
	if g.flowCache != nil {
		return g.flowCache
	}
	g.flowCache = map[*types.Func]*funcFlow{}
	for fn, info := range g.Funcs {
		g.flowCache[fn] = buildFlow(fn, info)
	}
	return g.flowCache
}

// Summaries computes the per-function dataflow summaries by
// fixed-point iteration over the call graph: a parameter reaches a
// return either directly or by being passed to a callee parameter
// that (per the callee's summary) reaches the callee's return, with
// that result value flowing onward. Convergence is guaranteed because
// the summary bits only ever flip from false to true.
func (g *Graph) Summaries() map[*types.Func]*Summary {
	if g.summaries != nil {
		return g.summaries
	}
	flows := g.flows()
	sums := map[*types.Func]*Summary{}
	for fn := range flows {
		sums[fn] = &Summary{Fn: fn, ParamToReturn: map[int]bool{}, TaintsParam: map[int]bool{}}
	}
	g.summaries = sums
	for changed := true; changed; {
		changed = false
		for fn, ff := range flows {
			s := sums[fn]
			for idx, obj := range ff.params {
				if s.ParamToReturn[idx] && s.TaintsParam[idx] {
					continue
				}
				reach := g.reachable(ff, map[node]bool{obj: true})
				if !s.ParamToReturn[idx] && reach[ff.ret()] {
					s.ParamToReturn[idx] = true
					changed = true
				}
				if !s.TaintsParam[idx] {
					// The parameter object itself gaining new inbound
					// flow means the function writes into it.
					if mutableKind(obj.Type()) && derivedInto(ff, obj, reach) {
						s.TaintsParam[idx] = true
						changed = true
					}
				}
			}
		}
	}
	return sums
}

// derivedInto reports whether anything outside the seed set flows into
// obj inside the function (i.e. the function writes through obj).
func derivedInto(ff *funcFlow, obj types.Object, fromSelf map[node]bool) bool {
	for src, dsts := range ff.edges {
		if fromSelf[src] {
			continue
		}
		for _, d := range dsts {
			if d == node(obj) {
				return true
			}
		}
	}
	return false
}

// reachable runs forward reachability from the seed nodes across the
// intra-function edges, splicing in call-result derivation through
// the current summaries: a call's result node is reachable when a
// reachable value feeds an argument whose parameter (per the callee
// summary) flows to the callee's return. Unknown callees — builtins,
// function values, interface methods with no known implementation —
// are treated as returning data derived from every argument.
func (g *Graph) reachable(ff *funcFlow, seeds map[node]bool) map[node]bool {
	reach := map[node]bool{}
	for s := range seeds {
		reach[s] = true
	}
	for changed := true; changed; {
		changed = false
		visit := func(n node) {
			if !reach[n] {
				reach[n] = true
				changed = true
			}
		}
		for src, dsts := range ff.edges {
			if !reach[src] {
				continue
			}
			for _, d := range dsts {
				visit(d)
			}
		}
		for _, cs := range ff.calls {
			if reach[cs.call] {
				continue
			}
			if g.callResultDerived(cs, reach) {
				visit(cs.call)
			}
		}
	}
	return reach
}

// callResultDerived reports whether the call's results derive from any
// currently-reachable value, per the callee summaries.
func (g *Graph) callResultDerived(cs *callSite, reach map[node]bool) bool {
	argReached := func(i int) bool {
		var nodes []node
		if i == -1 {
			nodes = cs.recv
		} else if i < len(cs.args) {
			nodes = cs.args[i]
		}
		for _, n := range nodes {
			if reach[n] {
				return true
			}
		}
		return false
	}
	anyArg := func() bool {
		for i := -1; i < len(cs.args); i++ {
			if argReached(i) {
				return true
			}
		}
		return false
	}
	targets := g.callTargets(cs)
	if len(targets) == 0 {
		return anyArg()
	}
	for _, t := range targets {
		s := g.summaries[t]
		if s == nil {
			// Known function without a body in the units (stdlib,
			// export-data import): conservative.
			if anyArg() {
				return true
			}
			continue
		}
		for i := range s.ParamToReturn {
			if s.ParamToReturn[i] && argReached(i) {
				return true
			}
		}
	}
	return false
}

// callTargets resolves a call site to its possible declared targets:
// the static callee, or the implementations of an interface method.
// Returns nil when the target is wholly unknown.
func (g *Graph) callTargets(cs *callSite) []*types.Func {
	if cs.callee == nil {
		return nil
	}
	if !cs.iface {
		return []*types.Func{cs.callee}
	}
	impls := g.Impls[cs.callee]
	if len(impls) == 0 {
		return nil
	}
	out := make([]*types.Func, 0, len(impls)+1)
	out = append(out, cs.callee)
	out = append(out, impls...)
	return out
}
