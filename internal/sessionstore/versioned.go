package sessionstore

// Content-addressed versioning of session state (internal/vstore).
// When Config.Versions is set, the store maintains two families of
// vstore roots:
//
//	session/<id>  committed per turn pair: the transcript's Merkle
//	              tree at each committed turn count, so
//	              TranscriptAsOf(id, turn) materializes exactly what
//	              the session held at turn N;
//	shard/<NN>    committed at every snapshot compaction: the whole
//	              shard's durable state at the ship horizon, the unit
//	              replicas catch up on via chunk negotiation.
//
// Transcripts chunk into groups of turnsPerChunk turns, so appending
// a turn pair rewrites only the tail chunk plus the session node —
// every earlier full chunk is shared byte-for-byte with the previous
// version. A shard tree references its session nodes, so a compaction
// after light traffic shares every untouched session with the
// previous compaction's tree, and a replica that installed that one
// only fetches the delta.
//
// Version maintenance is an annotation on the durability path, never
// a gate on it: vstore failures are recorded (surfaced by
// VersionError and at Close) and user traffic continues. The known
// corner: a crash between a WAL append and its root commit leaves the
// session root one turn behind until the next commit folds the
// missing pair into its tree (the tree covers the full committed
// transcript, so nothing is lost — only the per-turn log entry).

import (
	"encoding/json"
	"errors"
	"fmt"

	"github.com/reliable-cda/cda/internal/dialogue"
	"github.com/reliable-cda/cda/internal/vstore"
)

// turnsPerChunk is the transcript chunking unit.
const turnsPerChunk = 32

// SessionRoot names the vstore root tracking a session's transcript.
func SessionRoot(id string) string { return "session/" + id }

// ShardRoot names the vstore root tracking a shard's snapshots.
func ShardRoot(shard int) string { return fmt.Sprintf("shard/%02d", shard) }

// Versions returns the configured version store (nil when versioning
// is off) — the seam the server and cluster layers use to serve and
// negotiate chunks.
func (s *Store) Versions() *vstore.Store { return s.cfg.Versions }

// ErrNoVersions is returned by version-dependent calls when the store
// was opened without a Config.Versions.
var ErrNoVersions = errors.New("sessionstore: version store not configured")

// MissingChunksError reports that a versioned snapshot could not be
// materialized because parts of its closure are absent locally; the
// replication driver negotiates the missing chunks and retries.
type MissingChunksError struct {
	Root vstore.Hash
}

func (e *MissingChunksError) Error() string {
	return fmt.Sprintf("sessionstore: missing chunks under snapshot root %s", e.Root)
}

// sessData is the data field of a "sess" chunk; refs are the turn
// chunks in transcript order.
type sessData struct {
	ID    string `json:"id"`
	Num   int    `json:"num"`
	Focus string `json:"focus,omitempty"`
	Turns int    `json:"turns"`
	Per   int    `json:"per"`
}

// shardData is the data field of a "shard" chunk; refs are the
// session chunks aligned with IDs (sorted).
type shardData struct {
	MaxNum     int      `json:"maxNum"`
	ShipSeq    int64    `json:"shipSeq"`
	IDs        []string `json:"ids"`
	Tombstones []string `json:"tombstones,omitempty"`
}

// encodeSessionTree stores a transcript as a Merkle tree and returns
// the session node's address.
func encodeSessionTree(vs *vstore.Store, ss sessionSnap) (vstore.Hash, error) {
	release := vs.Pin()
	defer release()
	var refs []vstore.Hash
	for lo := 0; lo < len(ss.Turns); lo += turnsPerChunk {
		hi := lo + turnsPerChunk
		if hi > len(ss.Turns) {
			hi = len(ss.Turns)
		}
		data, err := json.Marshal(ss.Turns[lo:hi])
		if err != nil {
			return "", fmt.Errorf("sessionstore: encode turn chunk: %w", err)
		}
		h, err := vs.Put("turns", nil, data)
		if err != nil {
			return "", err
		}
		refs = append(refs, h)
	}
	meta := sessData{ID: ss.ID, Num: ss.Num, Focus: ss.Focus, Turns: len(ss.Turns), Per: turnsPerChunk}
	data, err := json.Marshal(meta)
	if err != nil {
		return "", fmt.Errorf("sessionstore: encode session node: %w", err)
	}
	return vs.Put("sess", refs, data)
}

// decodeSessionTree rebuilds a transcript from a session node.
func decodeSessionTree(vs *vstore.Store, h vstore.Hash) (sessionSnap, error) {
	var meta sessData
	kind, err := vs.Data(h, &meta)
	if err != nil {
		return sessionSnap{}, err
	}
	if kind != "sess" {
		return sessionSnap{}, fmt.Errorf("sessionstore: chunk %s is %q, want sess", h, kind)
	}
	refs, err := vs.Refs(h)
	if err != nil {
		return sessionSnap{}, err
	}
	ss := sessionSnap{ID: meta.ID, Num: meta.Num, Focus: meta.Focus}
	for _, ref := range refs {
		var turns []turnRec
		kind, err := vs.Data(ref, &turns)
		if err != nil {
			return sessionSnap{}, err
		}
		if kind != "turns" {
			return sessionSnap{}, fmt.Errorf("sessionstore: chunk %s is %q, want turns", ref, kind)
		}
		ss.Turns = append(ss.Turns, turns...)
	}
	if len(ss.Turns) != meta.Turns {
		return sessionSnap{}, fmt.Errorf("sessionstore: session tree %s has %d turns, node says %d", h, len(ss.Turns), meta.Turns)
	}
	return ss, nil
}

// encodeShardTree stores a shard snapshot as a Merkle tree and
// returns the shard node's address.
func encodeShardTree(vs *vstore.Store, snap snapshot) (vstore.Hash, error) {
	release := vs.Pin()
	defer release()
	meta := shardData{MaxNum: snap.MaxNum, ShipSeq: snap.ShipSeq, Tombstones: snap.Tombstones}
	refs := make([]vstore.Hash, 0, len(snap.Sessions))
	for _, ss := range snap.Sessions {
		h, err := encodeSessionTree(vs, ss)
		if err != nil {
			return "", err
		}
		refs = append(refs, h)
		meta.IDs = append(meta.IDs, ss.ID)
	}
	data, err := json.Marshal(meta)
	if err != nil {
		return "", fmt.Errorf("sessionstore: encode shard node: %w", err)
	}
	return vs.Put("shard", refs, data)
}

// decodeShardTree rebuilds a shard snapshot from a shard node.
func decodeShardTree(vs *vstore.Store, h vstore.Hash) (snapshot, error) {
	var meta shardData
	kind, err := vs.Data(h, &meta)
	if err != nil {
		return snapshot{}, err
	}
	if kind != "shard" {
		return snapshot{}, fmt.Errorf("sessionstore: chunk %s is %q, want shard", h, kind)
	}
	refs, err := vs.Refs(h)
	if err != nil {
		return snapshot{}, err
	}
	if len(refs) != len(meta.IDs) {
		return snapshot{}, fmt.Errorf("sessionstore: shard tree %s has %d sessions, node says %d", h, len(refs), len(meta.IDs))
	}
	snap := snapshot{MaxNum: meta.MaxNum, ShipSeq: meta.ShipSeq, Tombstones: meta.Tombstones}
	for _, ref := range refs {
		ss, err := decodeSessionTree(vs, ref)
		if err != nil {
			return snapshot{}, err
		}
		snap.Sessions = append(snap.Sessions, ss)
	}
	return snap, nil
}

// commitSessionVersion commits the session's transcript tree at its
// current committed turn count. Caller holds sh.mu. Failures are
// recorded on the shard, never returned to the durability path.
func (sh *shard) commitSessionVersion(vs *vstore.Store, e *Entry) {
	if vs == nil {
		return
	}
	ss := sessionSnap{ID: e.ID, Num: e.num, Focus: e.focus, Turns: e.committed}
	tree, err := encodeSessionTree(vs, ss)
	if err == nil {
		_, err = vs.Commit(SessionRoot(e.ID), tree, len(e.committed))
	}
	if err != nil {
		sh.versionErr = fmt.Errorf("sessionstore: version session %s: %w", e.ID, err)
	}
}

// commitShardVersion commits the shard snapshot tree at its ship
// horizon. Caller holds sh.mu.
func (sh *shard) commitShardVersion(vs *vstore.Store, shard int, snap snapshot) {
	if vs == nil {
		return
	}
	tree, err := encodeShardTree(vs, snap)
	if err == nil {
		_, err = vs.Commit(ShardRoot(shard), tree, int(snap.ShipSeq))
	}
	if err != nil {
		sh.versionErr = fmt.Errorf("sessionstore: version shard %d: %w", shard, err)
	}
}

// VersionError reports (and clears) the most recent version-
// maintenance failure on a shard, for health surfacing.
func (s *Store) VersionError(shard int) error {
	sh := s.shards[shard&(len(s.shards)-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	err := sh.versionErr
	sh.versionErr = nil
	return err
}

// TranscriptAsOf materializes a session's transcript as it stood at
// committed turn count `turn` — the time-travel read path. The
// returned dialogue session is immutable history: a fresh
// materialization, sharing nothing with the live session.
func (s *Store) TranscriptAsOf(id string, turn int) (*dialogue.Session, vstore.Commit, error) {
	vs := s.cfg.Versions
	if vs == nil {
		return nil, vstore.Commit{}, ErrNoVersions
	}
	c, err := vs.AsOf(SessionRoot(id), turn)
	if err != nil {
		return nil, vstore.Commit{}, err
	}
	tree, err := treeOf(vs, c)
	if err != nil {
		return nil, vstore.Commit{}, err
	}
	ss, err := decodeSessionTree(vs, tree)
	if err != nil {
		return nil, vstore.Commit{}, err
	}
	sess := dialogue.NewSession()
	tmp := &Entry{ID: ss.ID, num: ss.Num, sess: sess}
	for _, tr := range ss.Turns {
		appendTurn(tmp, tr)
	}
	sess.Focus = ss.Focus
	return sess, c, nil
}

// SessionVersions returns a session's commit log (oldest first).
func (s *Store) SessionVersions(id string) ([]vstore.Commit, error) {
	vs := s.cfg.Versions
	if vs == nil {
		return nil, ErrNoVersions
	}
	return vs.Log(SessionRoot(id))
}

// treeOf returns the commit's tree hash (Commit.Tree is recorded in
// the log; fall back to the chunk for logs shipped without it).
func treeOf(vs *vstore.Store, c vstore.Commit) (vstore.Hash, error) {
	if c.Tree != "" {
		return c.Tree, nil
	}
	refs, err := vs.Refs(c.Hash)
	if err != nil {
		return "", err
	}
	if len(refs) != 1 {
		return "", fmt.Errorf("sessionstore: commit %s has %d refs, want 1", c.Hash, len(refs))
	}
	return refs[0], nil
}

// materializeShardSnapshot rebuilds a shard snapshot from a shard
// root hash present in the local version store. A partially shipped
// closure yields *MissingChunksError so the driver can negotiate the
// gap and retry.
func (s *Store) materializeShardSnapshot(root vstore.Hash) (snapshot, error) {
	vs := s.cfg.Versions
	if vs == nil {
		return snapshot{}, ErrNoVersions
	}
	if !vs.HasClosure(root) {
		return snapshot{}, &MissingChunksError{Root: root}
	}
	tree, err := vs.ResolveTree(root)
	if err != nil {
		return snapshot{}, err
	}
	return decodeShardTree(vs, tree)
}
