package sessionstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reliable-cda/cda/internal/dialogue"
	"github.com/reliable-cda/cda/internal/faults"
	"github.com/reliable-cda/cda/internal/resilience"
)

// commitPair appends one question/answer pair and persists it.
func commitPair(t *testing.T, st *Store, e *Entry, q, a string, conf float64) {
	t.Helper()
	err := e.Do(func(sess *dialogue.Session) error {
		sess.CommitTurn(q, dialogue.ClassifyIntent(q), a, conf)
		return st.CommitTurn(e)
	})
	if err != nil {
		t.Fatalf("commit %q: %v", q, err)
	}
}

func transcriptOf(t *testing.T, e *Entry) string {
	t.Helper()
	var out string
	if err := e.Do(func(sess *dialogue.Session) error {
		out = Transcript(sess)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRecoverByteIdentical(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	var want []string
	for i := 0; i < 5; i++ {
		e, err := st.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= i; j++ {
			commitPair(t, st, e,
				fmt.Sprintf("how many employment in region %d-%d", i, j),
				fmt.Sprintf("there are %d", 10*i+j),
				0.5+float64(j)/17) // awkward float: exercises exact round-trip
		}
		ids = append(ids, e.ID)
		want = append(want, transcriptOf(t, e))
	}
	// Simulated kill: no Close, no Compact.
	st2, err := Open(Config{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if st2.Len() != 5 {
		t.Fatalf("recovered %d sessions, want 5", st2.Len())
	}
	for i, id := range ids {
		e, status := st2.Get(id)
		if status != Found {
			t.Fatalf("session %s status = %v", id, status)
		}
		if got := transcriptOf(t, e); got != want[i] {
			t.Errorf("session %s transcript mismatch:\n got: %q\nwant: %q", id, got, want[i])
		}
	}
	// Recovered store keeps issuing fresh ids.
	e, err := st2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if e.ID == id {
			t.Fatalf("recovered store re-issued id %s", id)
		}
	}
}

func TestRecoverAfterSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Shards: 1, SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	e, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 7; j++ {
		commitPair(t, st, e, fmt.Sprintf("q%d", j), fmt.Sprintf("a%d", j), 0.9)
	}
	want := transcriptOf(t, e)
	// Compaction must have fired (8 records > 2*SnapshotEvery) and
	// truncated the WAL below its full-history size.
	snapInfo, err := os.Stat(filepath.Join(dir, "shard-00.snap"))
	if err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	if snapInfo.Size() == 0 {
		t.Fatal("snapshot empty")
	}
	st2, err := Open(Config{Dir: dir, Shards: 1, SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, status := st2.Get(e.ID)
	if status != Found {
		t.Fatalf("status = %v", status)
	}
	if tr := transcriptOf(t, got); tr != want {
		t.Errorf("post-compaction recovery mismatch:\n got: %q\nwant: %q", tr, want)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayIdempotentOverSnapshot simulates a crash between snapshot
// publication and WAL truncation: the WAL still holds records the
// snapshot already folded in, and replay must not duplicate them.
func TestReplayIdempotentOverSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	commitPair(t, st, e, "q0", "a0", 0.8)
	commitPair(t, st, e, "q1", "a1", 0.7)
	want := transcriptOf(t, e)
	walPath := filepath.Join(dir, "shard-00.wal")
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the pre-compaction WAL next to the published snapshot.
	if err := os.WriteFile(walPath, walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Config{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, status := st2.Get(e.ID)
	if status != Found {
		t.Fatalf("status = %v", status)
	}
	if tr := transcriptOf(t, got); tr != want {
		t.Errorf("replay duplicated snapshotted turns:\n got: %q\nwant: %q", tr, want)
	}
}

// TestWALTornTailRecovers is the torn-tail regression: a crash
// mid-append leaves a truncated final record, and Open must recover
// the longest valid prefix cleanly rather than error.
func TestWALTornTailRecovers(t *testing.T) {
	for _, cut := range []int{1, 5, 9, 17} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(Config{Dir: dir, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			e, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			commitPair(t, st, e, "q0", "a0", 0.8)
			prefix := transcriptOf(t, e)
			commitPair(t, st, e, "q1", "a1", 0.7)
			walPath := filepath.Join(dir, "shard-00.wal")
			info, err := os.Stat(walPath)
			if err != nil {
				t.Fatal(err)
			}
			// Tear the final (second) turn record by cut bytes.
			if err := os.Truncate(walPath, info.Size()-int64(cut)); err != nil {
				t.Fatal(err)
			}
			st2, err := Open(Config{Dir: dir, Shards: 1})
			if err != nil {
				t.Fatalf("torn tail must recover, got %v", err)
			}
			got, status := st2.Get(e.ID)
			if status != Found {
				t.Fatalf("status = %v", status)
			}
			if tr := transcriptOf(t, got); tr != prefix {
				t.Errorf("recovered transcript:\n got: %q\nwant committed prefix: %q", tr, prefix)
			}
			// The store stays writable on the clean frame boundary.
			commitPair(t, st2, got, "q2", "a2", 0.6)
			st3, err := Open(Config{Dir: dir, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			e3, status := st3.Get(e.ID)
			if status != Found {
				t.Fatal("post-repair session lost")
			}
			if tr := transcriptOf(t, e3); !strings.Contains(tr, "q2") {
				t.Errorf("post-repair commit lost: %q", tr)
			}
		})
	}
}

// TestCrashFaultRollsBack drives the injected torn-write path: the
// commit fails with ErrCrashed, the in-memory transcript rolls back
// to the durable prefix, and recovery agrees with it byte-for-byte.
func TestCrashFaultRollsBack(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(faults.Config{Seed: 3,
		PerBackend: map[string]faults.Rates{"wal": {Crash: 1}}}, nil)
	st, err := Open(Config{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	commitPair(t, st, e, "q0", "a0", 0.8)
	want := transcriptOf(t, e)
	// Arm the crash injector after a clean prefix exists.
	st.shards[0].wal.faults = inj
	err = e.Do(func(sess *dialogue.Session) error {
		sess.CommitTurn("q1", dialogue.IntentQuery, "a1", 0.7)
		return st.CommitTurn(e)
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("commit after crash fault = %v, want ErrCrashed", err)
	}
	if got := transcriptOf(t, e); got != want {
		t.Errorf("in-memory transcript not rolled back:\n got: %q\nwant: %q", got, want)
	}
	// Everything after the crash must keep failing: the process is dead.
	err = e.Do(func(sess *dialogue.Session) error {
		sess.CommitTurn("q2", dialogue.IntentQuery, "a2", 0.7)
		return st.CommitTurn(e)
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash commit = %v, want ErrCrashed", err)
	}
	st2, err := Open(Config{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, status := st2.Get(e.ID)
	if status != Found {
		t.Fatalf("status = %v", status)
	}
	if tr := transcriptOf(t, got); tr != want {
		t.Errorf("recovered transcript:\n got: %q\nwant: %q", tr, want)
	}
}

func TestTTLEviction(t *testing.T) {
	dir := t.TempDir()
	clock := resilience.NewVirtualClock()
	cfg := Config{Dir: dir, Shards: 2, TTL: 10 * time.Minute, Clock: clock}
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	commitPair(t, st, e, "q0", "a0", 0.8)
	clock.Advance(9 * time.Minute)
	if _, status := st.Get(e.ID); status != Found {
		t.Fatalf("fresh session status = %v", status)
	}
	// The Get above refreshed the idle timer; idle past the TTL now
	// evicts deterministically.
	clock.Advance(11 * time.Minute)
	if _, status := st.Get(e.ID); status != Gone {
		t.Fatalf("idle session status = %v, want Gone", status)
	}
	if _, status := st.Get("s9999"); status != NotFound {
		t.Fatal("unknown id must stay NotFound, not Gone")
	}
	// Tombstones survive restart: still Gone, never 404.
	st2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, status := st2.Get(e.ID); status != Gone {
		t.Fatalf("restarted status = %v, want Gone", status)
	}
	// And the id is never re-issued even though the session is gone.
	e2, err := st2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if e2.ID == e.ID {
		t.Fatalf("tombstoned id %s re-issued", e.ID)
	}
}

func TestSweepIdle(t *testing.T) {
	clock := resilience.NewVirtualClock()
	st := NewMemory(Config{Shards: 4, TTL: time.Minute, Clock: clock})
	var old []*Entry
	for i := 0; i < 6; i++ {
		e, err := st.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		old = append(old, e)
	}
	clock.Advance(2 * time.Minute)
	fresh, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	n, err := st.SweepIdle()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("swept %d, want 6", n)
	}
	for _, e := range old {
		if _, status := st.Get(e.ID); status != Gone {
			t.Errorf("session %s status after sweep = %v", e.ID, status)
		}
	}
	if _, status := st.Get(fresh.ID); status != Found {
		t.Error("fresh session swept")
	}
}

func TestShardLayout(t *testing.T) {
	st := NewMemory(Config{Shards: 5}) // rounds up to 8
	if st.Shards() != 8 {
		t.Fatalf("shards = %d, want 8 (next power of two)", st.Shards())
	}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		idx := st.ShardIndex(fmt.Sprintf("s%04d", i))
		if idx < 0 || idx >= 8 {
			t.Fatalf("shard index %d out of range", idx)
		}
		seen[idx] = true
	}
	if len(seen) < 4 {
		t.Errorf("FNV sharding used only %d/8 shards over 200 ids", len(seen))
	}
	// Placement is a pure function of the id: recovery must find each
	// session in the shard that logged it.
	if st.ShardIndex("s0001") != st.ShardIndex("s0001") {
		t.Fatal("shard index unstable")
	}
}

func TestConcurrentLifecycle(t *testing.T) {
	dir := t.TempDir()
	clock := resilience.NewVirtualClock()
	st, err := Open(Config{Dir: dir, Shards: 8, SnapshotEvery: 4,
		TTL: time.Hour, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 5
	ids := make([][]string, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				e, err := st.NewSession()
				if err != nil {
					t.Errorf("worker %d: %v", g, err)
					return
				}
				for j := 0; j < 3; j++ {
					commitErr := e.Do(func(sess *dialogue.Session) error {
						sess.CommitTurn(fmt.Sprintf("w%d q%d", g, j),
							dialogue.IntentQuery, fmt.Sprintf("a%d", j), 0.8)
						return st.CommitTurn(e)
					})
					if commitErr != nil {
						t.Errorf("worker %d: %v", g, commitErr)
						return
					}
				}
				if _, status := st.Get(e.ID); status != Found {
					t.Errorf("worker %d: own session %v", g, status)
				}
				if _, err := st.SweepIdle(); err != nil {
					t.Errorf("worker %d sweep: %v", g, err)
				}
				ids[g] = append(ids[g], e.ID)
			}
		}(g)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Config{Dir: dir, Shards: 8, TTL: time.Hour, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	for g := range ids {
		for _, id := range ids[g] {
			e, status := st2.Get(id)
			if status != Found {
				t.Fatalf("session %s lost across restart: %v", id, status)
			}
			tr := transcriptOf(t, e)
			if n := strings.Count(tr, "\n"); n != 6 {
				t.Fatalf("session %s recovered %d turns, want 6:\n%s", id, n, tr)
			}
		}
	}
}

func TestNewMemoryIsEphemeral(t *testing.T) {
	st := NewMemory(Config{})
	e, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	commitErr := e.Do(func(sess *dialogue.Session) error {
		sess.CommitTurn("q", dialogue.IntentQuery, "a", 0.9)
		return st.CommitTurn(e)
	})
	if commitErr != nil {
		t.Fatal(commitErr)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitWithoutPairErrors(t *testing.T) {
	st := NewMemory(Config{})
	e, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if cerr := e.Do(func(*dialogue.Session) error { return st.CommitTurn(e) }); cerr == nil {
		t.Fatal("CommitTurn on empty transcript must error")
	}
}
