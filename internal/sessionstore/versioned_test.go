package sessionstore

import (
	"errors"
	"fmt"
	"testing"

	"github.com/reliable-cda/cda/internal/vstore"
)

// TestPullFramesAtCompactionHorizonBoundary pins the boundary between
// the snapshot-transfer and frame-shipping paths: a cursor EXACTLY at
// the compaction horizon is fully served by frames — the horizon is
// the last sequence the snapshot covers, so nothing below it is
// needed — while one record below it must get a snapshot.
func TestPullFramesAtCompactionHorizonBoundary(t *testing.T) {
	primary, err := Open(Config{Dir: t.TempDir(), Shards: 1, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := primary.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	e, err := primary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 6; j++ {
		commitPair(t, primary, e, fmt.Sprintf("q%d", j), fmt.Sprintf("a%d", j), 0.5)
	}
	sh := primary.shards[0]
	sh.mu.Lock()
	horizon := sh.shipBase
	tail := len(sh.tail)
	sh.mu.Unlock()
	if horizon == 0 {
		t.Fatalf("no compaction happened; shipBase = 0")
	}
	if tail == 0 {
		// Land at least one record above the horizon so the frame path
		// has something to serve.
		commitPair(t, primary, e, "q-tail", "a-tail", 0.5)
	}

	// Exactly at the horizon: frames, starting at horizon+1.
	b, err := primary.PullFrames(0, horizon, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Snapshot != nil || b.SnapshotRoot != "" {
		t.Fatalf("cursor at horizon %d got a snapshot transfer", horizon)
	}
	if len(b.Frames) == 0 || b.Frames[0].Seq != horizon+1 {
		t.Fatalf("cursor at horizon: frames = %d starting %d, want first seq %d",
			len(b.Frames), b.Frames[0].Seq, horizon+1)
	}

	// One below: snapshot (or versioned root) transfer.
	b, err = primary.PullFrames(0, horizon-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Snapshot == nil && b.SnapshotRoot == "" {
		t.Fatalf("cursor below horizon served %d frames, want snapshot", len(b.Frames))
	}

	// A replica starting exactly at the horizon catches up by frames
	// alone and mirrors byte-identically.
	replica, err := Open(Config{Dir: t.TempDir(), Shards: 1, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := replica.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	full, err := primary.PullFrames(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplyBatch(full); err != nil {
		t.Fatal(err)
	}
	shipAll(t, primary, replica, 0)
	assertMirrors(t, primary, replica, []string{e.ID})
}

func versionedPair(t *testing.T) (*Store, *vstore.Store) {
	t.Helper()
	vs := vstore.NewMemory()
	st, err := Open(Config{Dir: t.TempDir(), Shards: 1, SnapshotEvery: 4, Versions: vs})
	if err != nil {
		t.Fatal(err)
	}
	return st, vs
}

func TestTranscriptAsOfMaterializesEveryVersion(t *testing.T) {
	st, _ := versionedPair(t)
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	e, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Capture the canonical transcript after every committed pair.
	want := map[int]string{}
	for j := 0; j < 5; j++ {
		commitPair(t, st, e, fmt.Sprintf("question %d", j), fmt.Sprintf("answer %d", j), 0.25+float64(j)/10)
		want[2*(j+1)] = transcriptOf(t, e)
	}
	log, err := st.SessionVersions(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 5 {
		t.Fatalf("session has %d versions, want 5: %+v", len(log), log)
	}
	for turn, expect := range want {
		sess, c, err := st.TranscriptAsOf(e.ID, turn)
		if err != nil {
			t.Fatalf("TranscriptAsOf(%d): %v", turn, err)
		}
		if c.Turn != turn {
			t.Fatalf("AsOf(%d) resolved commit at turn %d", turn, c.Turn)
		}
		if got := Transcript(sess); got != expect {
			t.Fatalf("transcript at turn %d drifted:\nwant:\n%s\ngot:\n%s", turn, expect, got)
		}
	}
	// An odd cursor resolves to the version at or before it.
	sess, c, err := st.TranscriptAsOf(e.ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Turn != 2 || Transcript(sess) != want[2] {
		t.Fatalf("AsOf(3) = turn %d", c.Turn)
	}
	if _, _, err := st.TranscriptAsOf("never-issued", 2); err == nil {
		t.Fatal("TranscriptAsOf on unknown session succeeded")
	}

	// Unversioned stores refuse rather than pretend.
	plain := NewMemory(Config{Shards: 1})
	if _, _, err := plain.TranscriptAsOf(e.ID, 2); !errors.Is(err, ErrNoVersions) {
		t.Fatalf("err = %v, want ErrNoVersions", err)
	}
}

// TestVersionedSnapshotShipNegotiatesChunks drives the versioned
// catch-up path end to end in-process: the pull returns a snapshot
// root instead of inline JSON, the first apply fails typed on missing
// chunks, negotiation ships exactly the missing closure, and the
// retried apply installs it. A later catch-up reuses the replica's
// chunks and moves only the delta.
func TestVersionedSnapshotShipNegotiatesChunks(t *testing.T) {
	primary, vsP := versionedPair(t)
	replica, vsR := versionedPair(t)
	defer func() {
		if err := errors.Join(primary.Close(), replica.Close()); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	// Several sessions: round 2 only touches the first, so the others'
	// subtrees must ship exactly once.
	var entries []*Entry
	var ids []string
	for i := 0; i < 6; i++ {
		e, err := primary.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
		ids = append(ids, e.ID)
		for j := 0; j < 2; j++ {
			commitPair(t, primary, e, fmt.Sprintf("s%d q%d", i, j), fmt.Sprintf("a%d", j), 0.5)
		}
	}
	e := entries[0]

	b, err := primary.PullFrames(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.SnapshotRoot == "" || b.Snapshot != nil {
		t.Fatalf("versioned pull below horizon: root=%q inline=%d bytes", b.SnapshotRoot, len(b.Snapshot))
	}

	var missing *MissingChunksError
	if err := replica.ApplyBatch(b); !errors.As(err, &missing) {
		t.Fatalf("apply without chunks err = %v, want MissingChunksError", err)
	}
	moved1, err := vsR.PullFrom(vsP, missing.Root, 16)
	if err != nil {
		t.Fatalf("negotiate: %v", err)
	}
	if moved1 == 0 {
		t.Fatal("negotiation moved no chunks")
	}
	if err := replica.ApplyBatch(b); err != nil {
		t.Fatalf("apply after negotiation: %v", err)
	}
	shipAll(t, primary, replica, 0)
	assertMirrors(t, primary, replica, ids)

	// The replica can itself time travel after a versioned install —
	// its log starts at install time (pre-install history stays on the
	// primary), so ask for its own head.
	rlog, err := replica.SessionVersions(e.ID)
	if err != nil {
		t.Fatalf("replica SessionVersions: %v", err)
	}
	if len(rlog) == 0 {
		t.Fatal("replica has no session versions after install")
	}
	if _, _, err := replica.TranscriptAsOf(e.ID, rlog[len(rlog)-1].Turn); err != nil {
		t.Fatalf("replica TranscriptAsOf: %v", err)
	}

	// Next round: more traffic to ONE session past another compaction,
	// then catch up again. Structural sharing must make the second
	// transfer smaller — the five untouched sessions' subtrees are
	// already on the replica.
	for j := 2; j < 8; j++ {
		commitPair(t, primary, e, fmt.Sprintf("s0 q%d", j), fmt.Sprintf("a%d", j), 0.5)
	}
	b2, err := primary.PullFrames(0, replica.ReplicationCursor(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if b2.SnapshotRoot == "" {
		t.Fatalf("second catch-up did not use a snapshot root")
	}
	moved2, err := vsR.PullFrom(vsP, vstore.Hash(b2.SnapshotRoot), 16)
	if err != nil {
		t.Fatal(err)
	}
	if moved2 >= moved1 {
		t.Fatalf("second negotiation moved %d chunks, first moved %d; no structural sharing", moved2, moved1)
	}
	if err := replica.ApplyBatch(b2); err != nil {
		t.Fatal(err)
	}
	shipAll(t, primary, replica, 0)
	assertMirrors(t, primary, replica, ids)

	// Shard roots agree across stores: the replica adopted the
	// primary's commit identity.
	ph, err := vsP.Head(ShardRoot(0))
	if err != nil {
		t.Fatal(err)
	}
	rh, err := vsR.Head(ShardRoot(0))
	if err != nil {
		t.Fatal(err)
	}
	if ph.Hash != rh.Hash || ph.Tree != rh.Tree {
		t.Fatalf("shard root diverged: primary %+v replica %+v", ph, rh)
	}
}

// TestVersionedBatchOnUnversionedReplica pins the mixed-deployment
// behavior: the apply fails typed (ErrNoVersions) instead of
// installing garbage, and the driver can fall back to inline
// snapshots.
func TestVersionedBatchOnUnversionedReplica(t *testing.T) {
	primary, _ := versionedPair(t)
	defer func() {
		if err := primary.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	replica := NewMemory(Config{Shards: 1})
	e, err := primary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 9; j++ {
		commitPair(t, primary, e, fmt.Sprintf("q%d", j), "a", 0.5)
	}
	b, err := primary.PullFrames(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.SnapshotRoot == "" {
		t.Skip("no compaction happened; nothing to pin")
	}
	if err := replica.ApplyBatch(b); !errors.Is(err, ErrNoVersions) {
		t.Fatalf("err = %v, want ErrNoVersions", err)
	}
}

// TestVersionedStoreSurvivesRestart pins that version roots live in
// the vstore, not the session store: a reopened store with the same
// vstore serves AsOf across the restart.
func TestVersionedStoreSurvivesRestart(t *testing.T) {
	vdir := t.TempDir()
	sdir := t.TempDir()
	vs, err := vstore.Open(vstore.Config{Dir: vdir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(Config{Dir: sdir, Shards: 1, Versions: vs})
	if err != nil {
		t.Fatal(err)
	}
	e, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	commitPair(t, st, e, "q0", "a0", 0.5)
	commitPair(t, st, e, "q1", "a1", 0.5)
	wantMid, _, err := st.TranscriptAsOf(e.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := Transcript(wantMid)
	if err := errors.Join(st.Close(), vs.Close()); err != nil {
		t.Fatal(err)
	}

	vs2, err := vstore.Open(vstore.Config{Dir: vdir})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Config{Dir: sdir, Shards: 1, Versions: vs2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := errors.Join(st2.Close(), vs2.Close()); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	sess, c, err := st2.TranscriptAsOf(e.ID, 2)
	if err != nil {
		t.Fatalf("TranscriptAsOf after restart: %v", err)
	}
	if c.Turn != 2 || Transcript(sess) != want {
		t.Fatalf("restart lost version history: turn=%d", c.Turn)
	}
	// Committing the same pair again during recovery-like replay is
	// idempotent: the log is unchanged.
	before, err := st2.SessionVersions(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	ee, status := st2.Get(e.ID)
	if status != Found {
		t.Fatalf("session lost: %v", status)
	}
	commitPair(t, st2, ee, "q2", "a2", 0.5)
	after, err := st2.SessionVersions(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Fatalf("version log grew by %d, want 1", len(after)-len(before))
	}
}
