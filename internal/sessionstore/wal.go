package sessionstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL record framing: every record is
//
//	[magic 1B][payload length uint32 LE][payload crc32 (IEEE) uint32 LE][payload]
//
// followed immediately by the next record. The payload is one JSON
// walRecord. The fixed header makes torn tails detectable without a
// scan-back: a crash mid-append leaves either a partial header, a
// partial payload, or a payload whose checksum no longer matches —
// all three truncate cleanly to the last complete record on open.
const (
	walMagic      = byte(0xC5)
	walHeaderSize = 1 + 4 + 4
)

// ErrCrashed is returned by a commit whose WAL append was torn by an
// injected crash fault (faults.Injector.TornWrite). The store rolls
// the in-memory turn back so memory matches the durable prefix; the
// harness then reopens the directory to exercise recovery.
var ErrCrashed = errors.New("sessionstore: simulated crash during WAL append")

// walRecord is the WAL payload. Kind is one of "create", "turn",
// "evict". Turn records carry Seq — the transcript index of the first
// turn of the committed pair — so replay over a snapshot that already
// contains the pair is idempotent.
type walRecord struct {
	Kind  string    `json:"kind"`
	ID    string    `json:"id"`
	Num   int       `json:"num,omitempty"`
	Seq   int       `json:"seq,omitempty"`
	Focus string    `json:"focus,omitempty"`
	Turns []turnRec `json:"turns,omitempty"`
}

// turnRec is one transcript turn as persisted. Role and Intent use
// their canonical string names (dialogue.ParseRole / ParseIntent
// invert them exactly), keeping the log greppable while staying
// lossless.
type turnRec struct {
	Role       string  `json:"role"`
	Text       string  `json:"text"`
	Intent     string  `json:"intent,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// WriteFaults is the crash seam the WAL threads its appends through;
// *faults.Injector implements it. Nil means no injected crashes.
type WriteFaults interface {
	TornWrite(op string, b []byte) ([]byte, bool)
}

// wal is one shard's append-only log. All methods are called with the
// owning shard's mutex held, so the wal itself needs no lock.
type wal struct {
	f      *os.File
	path   string
	op     string // fault-injection operation name, e.g. "wal.append.s3"
	faults WriteFaults
	nosync bool
	// dead is set after a simulated crash: the process is considered
	// gone, so further appends must fail rather than write past the
	// torn record.
	dead bool
}

// openWAL opens (creating if absent) the shard log at path, scans it,
// truncates any torn tail, and returns the decoded complete records
// alongside their raw frames (the replication tail).
func openWAL(path, op string, faults WriteFaults, nosync bool) (*wal, []walRecord, [][]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, nil, fmt.Errorf("sessionstore: read wal %s: %w", path, err)
	}
	recs, frames, valid := scanWAL(raw)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sessionstore: open wal %s: %w", path, err)
	}
	if valid < int64(len(raw)) {
		// Torn tail from a crash mid-append: drop the incomplete record
		// so the next append starts on a clean frame boundary.
		if err := f.Truncate(valid); err != nil {
			cerr := f.Close()
			return nil, nil, nil, errors.Join(fmt.Errorf("sessionstore: truncate torn wal tail %s: %w", path, err), cerr)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		cerr := f.Close()
		return nil, nil, nil, errors.Join(fmt.Errorf("sessionstore: seek wal %s: %w", path, err), cerr)
	}
	return &wal{f: f, path: path, op: op, faults: faults, nosync: nosync}, recs, frames, nil
}

// scanWAL decodes the longest valid record prefix of raw, returning
// the records, their raw frames, and the byte offset of the end of
// the last complete record. Anything after the first malformed frame
// is untrusted (a torn append) and excluded.
func scanWAL(raw []byte) ([]walRecord, [][]byte, int64) {
	var recs []walRecord
	var frames [][]byte
	off := int64(0)
	for {
		rest := raw[off:]
		if len(rest) < walHeaderSize || rest[0] != walMagic {
			return recs, frames, off
		}
		n := binary.LittleEndian.Uint32(rest[1:5])
		sum := binary.LittleEndian.Uint32(rest[5:9])
		if uint32(len(rest)-walHeaderSize) < n {
			return recs, frames, off
		}
		payload := rest[walHeaderSize : walHeaderSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, frames, off
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, frames, off
		}
		recs = append(recs, rec)
		frames = append(frames, rest[:walHeaderSize+int(n)])
		off += int64(walHeaderSize) + int64(n)
	}
}

// frame encodes one record with its header.
func frame(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("sessionstore: encode wal record: %w", err)
	}
	buf := make([]byte, walHeaderSize+len(payload))
	buf[0] = walMagic
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[5:9], crc32.ChecksumIEEE(payload))
	copy(buf[walHeaderSize:], payload)
	return buf, nil
}

// appendFrame writes an already-framed record durably. A crash fault
// persists the torn prefix, marks the wal dead, and returns
// ErrCrashed.
func (w *wal) appendFrame(buf []byte) error {
	if w.dead {
		return ErrCrashed
	}
	if w.faults != nil {
		cut, crashed := w.faults.TornWrite(w.op, buf)
		if crashed {
			w.dead = true
			if _, werr := w.f.Write(cut); werr != nil {
				return errors.Join(ErrCrashed, werr)
			}
			if serr := w.f.Sync(); serr != nil {
				return errors.Join(ErrCrashed, serr)
			}
			return ErrCrashed
		}
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("sessionstore: append wal %s: %w", w.path, err)
	}
	if !w.nosync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("sessionstore: fsync wal %s: %w", w.path, err)
		}
	}
	return nil
}

// reset truncates the log after a successful snapshot compaction.
func (w *wal) reset() error {
	if w.dead {
		return ErrCrashed
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("sessionstore: truncate wal %s: %w", w.path, err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("sessionstore: rewind wal %s: %w", w.path, err)
	}
	if !w.nosync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("sessionstore: fsync wal %s: %w", w.path, err)
		}
	}
	return nil
}

// close releases the file handle.
func (w *wal) close() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("sessionstore: close wal %s: %w", w.path, err)
	}
	return nil
}
