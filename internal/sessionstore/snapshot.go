package sessionstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// snapshot is one shard's compacted state: everything the WAL had
// said, folded into a single JSON document. Compaction writes the
// snapshot durably (temp file + fsync + rename) and only then
// truncates the WAL, so a crash between the two steps merely replays
// records the snapshot already contains — replay is idempotent by
// construction (turn records carry their transcript index).
type snapshot struct {
	// MaxNum is the highest numeric session id this shard has ever
	// issued, evicted sessions included, so a recovered store never
	// re-issues an id that a tombstone would immediately declare Gone.
	MaxNum     int           `json:"max_num"`
	Sessions   []sessionSnap `json:"sessions"`
	Tombstones []string      `json:"tombstones"`
	// ShipSeq is the replication cursor at the snapshot horizon: how
	// many records had ever been appended to this shard's WAL when the
	// snapshot was published. Recovery resumes the cursor at ShipSeq
	// plus the replayed WAL length, keeping ship sequences monotonic
	// across compactions and restarts.
	ShipSeq int64 `json:"ship_seq,omitempty"`
}

// sessionSnap is one session's committed state.
type sessionSnap struct {
	ID    string    `json:"id"`
	Num   int       `json:"num"`
	Focus string    `json:"focus,omitempty"`
	Turns []turnRec `json:"turns"`
}

// writeSnapshot atomically replaces the snapshot at path.
func writeSnapshot(path string, snap snapshot, nosync bool) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("sessionstore: encode snapshot: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("sessionstore: create snapshot temp %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("sessionstore: write snapshot %s: %w", tmp, err), cerr)
	}
	if !nosync {
		if err := f.Sync(); err != nil {
			cerr := f.Close()
			return errors.Join(fmt.Errorf("sessionstore: fsync snapshot %s: %w", tmp, err), cerr)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("sessionstore: close snapshot %s: %w", tmp, err)
	}
	// cdalint:ignore fsync-order -- nosync is a benchmark-only escape
	// hatch that deliberately skips the Sync; production callers always
	// pass nosync=false, so the durable-write protocol holds.
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sessionstore: publish snapshot %s: %w", path, err)
	}
	if nosync {
		return nil
	}
	// The rename's directory entry must itself be durable, or a crash
	// right after compaction truncates the WAL against a snapshot the
	// filesystem never committed.
	return syncSnapshotDir(filepath.Dir(path))
}

// syncSnapshotDir fsyncs the snapshot's directory so the rename
// survives a crash on filesystems that do not order directory updates
// with data writes.
func syncSnapshotDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sessionstore: open dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		cerr := d.Close()
		return errors.Join(fmt.Errorf("sessionstore: fsync dir %s: %w", dir, err), cerr)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("sessionstore: close dir %s: %w", dir, err)
	}
	return nil
}

// readSnapshot loads the shard snapshot at path; a missing file is an
// empty snapshot (fresh shard or pre-first-compaction crash). A
// corrupt snapshot is an error — unlike the WAL tail, the snapshot
// was published atomically, so damage means something outside the
// store's crash model touched the file.
func readSnapshot(path string) (snapshot, error) {
	var snap snapshot
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return snap, nil
	}
	if err != nil {
		return snap, fmt.Errorf("sessionstore: read snapshot %s: %w", path, err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("sessionstore: decode snapshot %s: %w", path, err)
	}
	return snap, nil
}
