// Package sessionstore is the durable, sharded home of conversation
// state. The paper's Figure 1 dialogue treats the accumulated
// transcript — turns, intent annotations, confidences — as a
// first-class artifact the user returns to, so sessions must outlive
// the serving process: every committed turn pair is appended to a
// per-shard write-ahead log before the commit is acknowledged, and
// periodic snapshot compaction folds the log into one JSON document
// so recovery stays O(recent traffic), not O(history).
//
// Layout on disk (one pair of files per shard under Config.Dir):
//
//	shard-00.snap   atomically-published JSON snapshot (compaction)
//	shard-00.wal    append-only framed log of records since the snap
//
// Recovery loads the snapshot, replays the WAL over it (idempotent:
// turn records carry their transcript index), and truncates any torn
// tail left by a crash mid-append — so a recovered transcript is
// byte-identical to the committed prefix at the moment of the crash.
// The chaos harness (internal/chaos) property-tests exactly that
// under seeded crash/torn-write faults from internal/faults.
//
// Sessions are spread across a power-of-two number of shards by FNV-1a
// hash of the session id; each shard has its own mutex, WAL, and
// snapshot cadence, so commit traffic on one shard never serializes
// against another. Idle sessions are evicted on a TTL measured on the
// injectable resilience.Clock (deterministic in tests); evicted ids
// leave tombstones so the server can answer 410 Gone instead of 404.
package sessionstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/reliable-cda/cda/internal/dialogue"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/vstore"
)

// GetStatus classifies a session lookup.
type GetStatus int

// Lookup outcomes.
const (
	// Found: the session exists and is live.
	Found GetStatus = iota
	// NotFound: the id was never issued (HTTP 404).
	NotFound
	// Gone: the session existed but was evicted; a tombstone remembers
	// it (HTTP 410).
	Gone
)

// Config assembles a Store.
type Config struct {
	// Dir is the data directory; empty runs the store memory-only
	// (no WAL, no snapshots, nothing survives restart).
	Dir string
	// Shards is the shard count, rounded up to the next power of two
	// (default 8).
	Shards int
	// SnapshotEvery is the per-shard WAL record count between snapshot
	// compactions (default 256).
	SnapshotEvery int
	// TTL evicts sessions idle longer than this; 0 disables eviction.
	TTL time.Duration
	// Clock measures idleness and recovery time. Nil defaults to a
	// VirtualClock so tests drive eviction deterministically;
	// production passes resilience.NewWallClock().
	Clock resilience.Clock
	// Faults, when non-nil, injects crash/torn-write faults into WAL
	// appends (op "wal.append"). Leave nil in production.
	Faults WriteFaults
	// NoFsync skips fsync on WAL appends and snapshots — benchmarks
	// only; a production store must keep fsync on for its durability
	// guarantee to mean anything.
	NoFsync bool
	// Versions, when non-nil, maintains content-addressed version
	// roots for transcripts (per committed turn) and shard snapshots
	// (per compaction) — see versioned.go. Version maintenance never
	// fails user traffic; its errors surface via VersionError/Close.
	Versions *vstore.Store
}

func (cfg Config) withDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	// Round up to a power of two so the shard index is a mask, not a
	// modulo, and resharding math stays trivial.
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	cfg.Shards = n
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 256
	}
	if cfg.Clock == nil {
		cfg.Clock = resilience.NewVirtualClock()
	}
	return cfg
}

// Store is the sharded session store. Safe for concurrent use.
type Store struct {
	cfg   Config
	clock resilience.Clock

	mu      sync.Mutex // guards nextNum
	nextNum int

	shards []*shard
}

// shard owns one slice of the id space: its sessions, tombstones,
// WAL, and snapshot file. All fields below mu are guarded by it.
type shard struct {
	snapPath string
	// idx is this shard's index; versions is the shared vstore (nil
	// when versioning is off). Both are set once at Open, before any
	// concurrent use.
	idx      int
	versions *vstore.Store

	mu         sync.Mutex
	sessions   map[string]*Entry
	tombstones map[string]bool
	wal        *wal
	maxNum     int
	pending    int // WAL records since the last snapshot
	snapEvery  int
	nosync     bool
	// shipBase is the ship sequence at the last snapshot horizon; tail
	// holds the framed bytes of every record since, mirroring the
	// on-disk WAL, so replication pulls serve committed frames without
	// re-reading disk. remoteSeq is the highest primary cursor seen by
	// ApplyBatch (replicas only), for lag reporting.
	shipBase  int64
	tail      [][]byte
	remoteSeq int64
	// compactErr holds the most recent snapshot-compaction failure.
	// Compaction is an optimization — user traffic must not fail when
	// it does — so the error is retried on later commits and surfaced
	// at Close.
	compactErr error
	// versionErr holds the most recent version-maintenance failure
	// (see versioned.go); same policy as compactErr.
	versionErr error
}

// Entry is one live session. The turn lock (Do) serializes turns
// within the session; committed/focus/lastActive are guarded by the
// owning shard's mutex and describe only durably-committed state, so
// snapshot compaction never observes a half-applied turn.
type Entry struct {
	ID  string
	num int

	mu   sync.Mutex
	sess *dialogue.Session

	committed  []turnRec
	focus      string
	lastActive time.Duration
}

// Do runs fn with the session's turn lock held. All reads and writes
// of the dialogue session — Respond, transcript rendering, and the
// CommitTurn that persists the produced pair — must happen inside fn
// so turns within one session stay strictly serialized.
func (e *Entry) Do(fn func(sess *dialogue.Session) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return fn(e.sess)
}

// NewMemory builds a memory-only store (no durability). It cannot
// fail: there is no directory to open.
func NewMemory(cfg Config) *Store {
	cfg.Dir = ""
	st, err := Open(cfg)
	if err != nil {
		// Unreachable: every error path in Open touches the data
		// directory, and there is none.
		// cdalint:ignore bare-panic -- impossible-by-construction guard.
		panic(fmt.Sprintf("sessionstore: memory-only open failed: %v", err))
	}
	return st
}

// Open builds a store over cfg.Dir, recovering every shard: snapshot
// first, then the WAL replayed over it, torn tail truncated.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	st := &Store{cfg: cfg, clock: cfg.Clock, shards: make([]*shard, cfg.Shards)}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("sessionstore: create data dir: %w", err)
		}
	}
	for i := range st.shards {
		sh := &shard{
			idx:        i,
			versions:   cfg.Versions,
			sessions:   map[string]*Entry{},
			tombstones: map[string]bool{},
			snapEvery:  cfg.SnapshotEvery,
			nosync:     cfg.NoFsync,
		}
		st.shards[i] = sh
		if cfg.Dir == "" {
			continue
		}
		sh.snapPath = filepath.Join(cfg.Dir, fmt.Sprintf("shard-%02d.snap", i))
		snap, err := readSnapshot(sh.snapPath)
		if err != nil {
			return nil, err
		}
		sh.applySnapshot(snap, st.clock.Now())
		sh.shipBase = snap.ShipSeq
		w, recs, frames, err := openWAL(
			filepath.Join(cfg.Dir, fmt.Sprintf("shard-%02d.wal", i)),
			"wal.append", cfg.Faults, cfg.NoFsync)
		if err != nil {
			return nil, err
		}
		sh.wal = w
		for _, rec := range recs {
			sh.replay(rec, st.clock.Now())
		}
		sh.pending = len(recs)
		sh.tail = frames
	}
	for _, sh := range st.shards {
		if sh.maxNum > st.nextNum {
			st.nextNum = sh.maxNum
		}
	}
	return st, nil
}

// applySnapshot installs a shard snapshot (recovery only; no lock
// needed, the shard is not yet shared).
func (sh *shard) applySnapshot(snap snapshot, now time.Duration) {
	sh.maxNum = snap.MaxNum
	for _, ss := range snap.Sessions {
		e := &Entry{ID: ss.ID, num: ss.Num, sess: dialogue.NewSession(),
			focus: ss.Focus, lastActive: now}
		for _, tr := range ss.Turns {
			appendTurn(e, tr)
		}
		e.sess.Focus = ss.Focus
		sh.sessions[ss.ID] = e
		if ss.Num > sh.maxNum {
			sh.maxNum = ss.Num
		}
	}
	for _, id := range snap.Tombstones {
		sh.tombstones[id] = true
	}
}

// replay applies one WAL record over the recovered state. Records the
// snapshot already folded in are skipped by transcript index, so a
// crash between snapshot publication and WAL truncation is harmless.
func (sh *shard) replay(rec walRecord, now time.Duration) {
	switch rec.Kind {
	case "create":
		if rec.Num > sh.maxNum {
			sh.maxNum = rec.Num
		}
		if sh.tombstones[rec.ID] {
			return
		}
		if _, ok := sh.sessions[rec.ID]; ok {
			return
		}
		sh.sessions[rec.ID] = &Entry{ID: rec.ID, num: rec.Num,
			sess: dialogue.NewSession(), lastActive: now}
	case "turn":
		e, ok := sh.sessions[rec.ID]
		if !ok || len(e.committed) != rec.Seq {
			return
		}
		for _, tr := range rec.Turns {
			appendTurn(e, tr)
		}
		e.focus = rec.Focus
		e.sess.Focus = rec.Focus
	case "evict":
		delete(sh.sessions, rec.ID)
		sh.tombstones[rec.ID] = true
	}
}

// appendTurn applies one persisted turn to both the committed record
// and the live dialogue session.
func appendTurn(e *Entry, tr turnRec) {
	e.committed = append(e.committed, tr)
	e.sess.Turns = append(e.sess.Turns, dialogue.Turn{
		Role:       dialogue.ParseRole(tr.Role),
		Text:       tr.Text,
		Intent:     dialogue.ParseIntent(tr.Intent),
		Confidence: tr.Confidence,
	})
}

// fnv32a hashes a session id (FNV-1a) for shard placement.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// ShardIndexFor maps a session id to its shard in a store with the
// given power-of-two shard count — exported so the cluster router can
// compute shard placement for remote stores it only reaches over the
// wire (the hash is part of the replication protocol: primary and
// replica must agree on it).
func ShardIndexFor(id string, shards int) int {
	return int(fnv32a(id)) & (shards - 1)
}

// ShardIndex maps a session id to its shard (power-of-two mask).
func (s *Store) ShardIndex(id string) int {
	return ShardIndexFor(id, len(s.shards))
}

// Shards reports the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Len reports the number of live sessions across all shards.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.sessions)
		sh.mu.Unlock()
	}
	return n
}

// appendRecord frames rec, writes it durably to the WAL (when one is
// configured), and retains the frame in the replication tail. Caller
// holds sh.mu.
func (sh *shard) appendRecord(rec walRecord) error {
	buf, err := frame(rec)
	if err != nil {
		return err
	}
	if sh.wal != nil {
		if err := sh.wal.appendFrame(buf); err != nil {
			return err
		}
	}
	sh.tail = append(sh.tail, buf)
	sh.pending++
	return nil
}

// ErrSessionExists is returned by NewSessionWithID when the id is
// already live (or tombstoned) on this store.
var ErrSessionExists = errors.New("sessionstore: session id already exists")

// NewSession allocates the next session id, logs its creation, and
// returns the live entry.
func (s *Store) NewSession() (*Entry, error) {
	s.mu.Lock()
	s.nextNum++
	num := s.nextNum
	s.mu.Unlock()
	return s.createSession(fmt.Sprintf("s%04d", num), num)
}

// NewSessionWithID creates a session under a caller-chosen id — the
// cluster router picks ids up front so consistent-hash placement can
// route every later request from the id alone. Ids already live or
// tombstoned fail with ErrSessionExists; the internal numeric horizon
// still advances so MaxNum bookkeeping stays monotone.
func (s *Store) NewSessionWithID(id string) (*Entry, error) {
	if id == "" {
		return nil, errors.New("sessionstore: empty session id")
	}
	s.mu.Lock()
	s.nextNum++
	num := s.nextNum
	s.mu.Unlock()
	return s.createSession(id, num)
}

func (s *Store) createSession(id string, num int) (*Entry, error) {
	sh := s.shards[s.ShardIndex(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.tombstones[id] {
		return nil, fmt.Errorf("%w: %s (tombstoned)", ErrSessionExists, id)
	}
	if _, ok := sh.sessions[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrSessionExists, id)
	}
	if err := sh.appendRecord(walRecord{Kind: "create", ID: id, Num: num}); err != nil {
		return nil, err
	}
	e := &Entry{ID: id, num: num, sess: dialogue.NewSession(), lastActive: s.clock.Now()}
	sh.sessions[id] = e
	if num > sh.maxNum {
		sh.maxNum = num
	}
	sh.compactIfDue()
	return e, nil
}

// Get looks a session up, lazily evicting it when it has sat idle
// past the TTL (the deterministic, clock-driven path; SweepIdle is
// the proactive one). A Found lookup refreshes the idle timer.
func (s *Store) Get(id string) (*Entry, GetStatus) {
	sh := s.shards[s.ShardIndex(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.tombstones[id] {
		return nil, Gone
	}
	e, ok := sh.sessions[id]
	if !ok {
		return nil, NotFound
	}
	now := s.clock.Now()
	if s.cfg.TTL > 0 && now-e.lastActive > s.cfg.TTL {
		if err := sh.evict(e); err == nil {
			return nil, Gone
		}
		// The eviction record could not be logged (disk trouble, or an
		// injected crash). Prefer availability: keep serving the
		// session rather than evicting it in memory only and having it
		// resurrect after a restart.
	}
	e.lastActive = now
	return e, Found
}

// CommitTurn durably persists the most recent user/system turn pair
// of e's transcript. It MUST be called inside e.Do, immediately after
// a successful Respond, so the pair under commit cannot move. When
// the WAL append fails the pair is rolled back from the in-memory
// transcript — memory never claims a turn disk does not hold — and
// the error is returned for the caller to surface (the client simply
// re-asks).
func (s *Store) CommitTurn(e *Entry) error {
	sh := s.shards[s.ShardIndex(e.ID)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := len(e.sess.Turns)
	if n < 2 {
		return errors.New("sessionstore: no committed turn pair to persist")
	}
	if sh.sessions[e.ID] != e {
		// Evicted between Get and commit (TTL race): drop the pair and
		// tell the caller the session is gone.
		e.sess.Turns = e.sess.Turns[:n-2]
		return fmt.Errorf("sessionstore: session %s evicted mid-turn", e.ID)
	}
	pair := []turnRec{encodeTurn(e.sess.Turns[n-2]), encodeTurn(e.sess.Turns[n-1])}
	rec := walRecord{Kind: "turn", ID: e.ID, Seq: len(e.committed),
		Focus: e.sess.Focus, Turns: pair}
	if err := sh.appendRecord(rec); err != nil {
		e.sess.Turns = e.sess.Turns[:n-2]
		return err
	}
	e.committed = append(e.committed, pair...)
	e.focus = e.sess.Focus
	e.lastActive = s.clock.Now()
	sh.commitSessionVersion(sh.versions, e)
	sh.compactIfDue()
	return nil
}

// encodeTurn converts a dialogue turn to its persisted form.
func encodeTurn(t dialogue.Turn) turnRec {
	tr := turnRec{Role: t.Role.String(), Text: t.Text, Confidence: t.Confidence}
	if t.Role == dialogue.RoleUser {
		tr.Intent = t.Intent.String()
	}
	return tr
}

// evict logs the eviction, then removes the session and leaves a
// tombstone. Caller holds sh.mu.
func (sh *shard) evict(e *Entry) error {
	if err := sh.appendRecord(walRecord{Kind: "evict", ID: e.ID}); err != nil {
		return err
	}
	delete(sh.sessions, e.ID)
	sh.tombstones[e.ID] = true
	sh.compactIfDue()
	return nil
}

// SweepIdle proactively evicts every session idle past the TTL,
// returning how many were evicted and the first eviction error (later
// shards are still swept). With TTL zero it is a no-op.
func (s *Store) SweepIdle() (int, error) {
	if s.cfg.TTL <= 0 {
		return 0, nil
	}
	now := s.clock.Now()
	evicted := 0
	var firstErr error
	for _, sh := range s.shards {
		sh.mu.Lock()
		// Deterministic eviction order: sorted ids, not map order, so
		// two sweeps of identical stores write identical WAL suffixes.
		var idle []string
		for id, e := range sh.sessions {
			if now-e.lastActive > s.cfg.TTL {
				idle = append(idle, id)
			}
		}
		sort.Strings(idle)
		for _, id := range idle {
			if err := sh.evict(sh.sessions[id]); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			evicted++
		}
		sh.mu.Unlock()
	}
	return evicted, firstErr
}

// compactIfDue snapshots the shard when enough WAL records have
// accumulated. Caller holds sh.mu. Failures are remembered, not
// propagated: the commit that triggered compaction is already durable
// in the WAL, so user traffic continues and the error resurfaces at
// the next cadence and at Close.
func (sh *shard) compactIfDue() {
	if sh.pending < sh.snapEvery {
		return
	}
	if sh.wal == nil {
		// Memory-only: there is no WAL to fold, but the replication tail
		// must not grow without bound. Advancing the ship horizon drops
		// the retained frames; a replica behind it gets a snapshot
		// transfer built from live state instead.
		sh.shipBase = sh.cursor()
		sh.tail = nil
		sh.pending = 0
		return
	}
	if err := sh.compact(); err != nil {
		sh.compactErr = err
	}
}

// buildSnapshot renders the shard's committed state as a snapshot
// document, stamped with the current ship cursor. Caller holds sh.mu.
func (sh *shard) buildSnapshot() snapshot {
	snap := snapshot{MaxNum: sh.maxNum, ShipSeq: sh.cursor()}
	ids := make([]string, 0, len(sh.sessions))
	for id := range sh.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := sh.sessions[id]
		snap.Sessions = append(snap.Sessions, sessionSnap{
			ID: e.ID, Num: e.num, Focus: e.focus, Turns: e.committed})
	}
	for id := range sh.tombstones {
		snap.Tombstones = append(snap.Tombstones, id)
	}
	sort.Strings(snap.Tombstones)
	return snap
}

// compact folds the shard into a fresh snapshot and truncates the
// WAL. The ship horizon advances with the snapshot: replicas behind
// it will be served a snapshot transfer instead of frames. Caller
// holds sh.mu.
func (sh *shard) compact() error {
	if sh.wal == nil || sh.wal.dead {
		return nil
	}
	snap := sh.buildSnapshot()
	if err := writeSnapshot(sh.snapPath, snap, sh.nosync); err != nil {
		return err
	}
	if err := sh.wal.reset(); err != nil {
		return err
	}
	sh.shipBase = snap.ShipSeq
	sh.tail = nil
	sh.pending = 0
	sh.compactErr = nil
	sh.commitShardVersion(sh.versions, sh.idx, snap)
	return nil
}

// Compact forces a snapshot of every shard (graceful shutdown, tests).
func (s *Store) Compact() error {
	var errs []error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.wal != nil && sh.pending > 0 {
			if err := sh.compact(); err != nil {
				errs = append(errs, err)
			}
		}
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

// Close compacts what is pending, closes every WAL, and reports any
// compaction failure that was deferred off the commit path.
func (s *Store) Close() error {
	var errs []error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.wal != nil {
			if sh.pending > 0 && !sh.wal.dead {
				if err := sh.compact(); err != nil {
					errs = append(errs, err)
				}
			}
			if err := sh.wal.close(); err != nil {
				errs = append(errs, err)
			}
		}
		if sh.compactErr != nil {
			errs = append(errs, sh.compactErr)
			sh.compactErr = nil
		}
		if sh.versionErr != nil {
			errs = append(errs, sh.versionErr)
			sh.versionErr = nil
		}
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

// Transcript renders a session's transcript canonically — one line
// per turn, confidences in exact shortest form — so recovery tests
// can assert byte identity between pre-crash and recovered state.
// Callers synchronize access themselves (Entry.Do).
func Transcript(sess *dialogue.Session) string {
	var sb strings.Builder
	for i, t := range sess.Turns {
		fmt.Fprintf(&sb, "%03d %s", i, t.Role)
		if t.Role == dialogue.RoleUser {
			fmt.Fprintf(&sb, " intent=%s", t.Intent)
		} else {
			fmt.Fprintf(&sb, " conf=%s", strconv.FormatFloat(t.Confidence, 'g', -1, 64))
		}
		sb.WriteString(" | ")
		sb.WriteString(t.Text)
		sb.WriteByte('\n')
	}
	return sb.String()
}
