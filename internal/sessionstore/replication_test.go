package sessionstore

import (
	"errors"
	"fmt"
	"testing"
)

// shipAll drains every shard of src into dst until both cursors
// match, using batches of at most max frames (0: unbounded).
func shipAll(t *testing.T, src, dst *Store, max int) {
	t.Helper()
	for shard := 0; shard < src.Shards(); shard++ {
		for {
			b, err := src.PullFrames(shard, dst.ReplicationCursor(shard), max)
			if err != nil {
				t.Fatalf("pull shard %d: %v", shard, err)
			}
			if b.Empty() {
				break
			}
			if err := dst.ApplyBatch(b); err != nil {
				t.Fatalf("apply shard %d: %v", shard, err)
			}
		}
	}
}

// assertMirrors checks every live session of src renders the
// byte-identical transcript on dst.
func assertMirrors(t *testing.T, src, dst *Store, ids []string) {
	t.Helper()
	for _, id := range ids {
		pe, status := src.Get(id)
		if status != Found {
			t.Fatalf("primary lost session %s (%v)", id, status)
		}
		re, status := dst.Get(id)
		if status != Found {
			t.Fatalf("replica missing session %s (%v)", id, status)
		}
		if p, r := transcriptOf(t, pe), transcriptOf(t, re); p != r {
			t.Errorf("session %s diverged:\nprimary: %sreplica: %s", id, p, r)
		}
	}
}

func TestShipFramesByteIdenticalReplica(t *testing.T) {
	primary, err := Open(Config{Dir: t.TempDir(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	replica, err := Open(Config{Dir: t.TempDir(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 6; i++ {
		e, err := primary.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, e.ID)
		for j := 0; j <= i%3; j++ {
			commitPair(t, primary, e,
				fmt.Sprintf("question %d-%d", i, j),
				fmt.Sprintf("answer %d", 10*i+j),
				0.25+float64(j)/13)
		}
	}
	shipAll(t, primary, replica, 3)
	assertMirrors(t, primary, replica, ids)
	for shard := 0; shard < primary.Shards(); shard++ {
		if p, r := primary.ReplicationCursor(shard), replica.ReplicationCursor(shard); p != r {
			t.Errorf("shard %d cursor primary=%d replica=%d", shard, p, r)
		}
		if lag := replica.ReplicationLag(shard); lag != 0 {
			t.Errorf("caught-up replica lag = %d on shard %d", lag, shard)
		}
	}
	// Re-applying an old batch is a no-op (Seq idempotence).
	b, err := primary.PullFrames(primary.ShardIndex(ids[0]), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Empty() {
		if err := replica.ApplyBatch(b); err != nil {
			t.Fatalf("re-apply: %v", err)
		}
	}
	assertMirrors(t, primary, replica, ids)
	if err := errors.Join(primary.Close(), replica.Close()); err != nil {
		t.Fatal(err)
	}
}

// TestShipSnapshotFallback compacts the primary past the replica's
// cursor so the pull must fall back to a snapshot transfer, then
// resumes frame shipping on top of it.
func TestShipSnapshotFallback(t *testing.T) {
	primary, err := Open(Config{Dir: t.TempDir(), Shards: 1, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	replica, err := Open(Config{Dir: t.TempDir(), Shards: 1, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	e, err := primary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 9; j++ { // > 2 compaction cadences on shard 0
		commitPair(t, primary, e, fmt.Sprintf("q%d", j), fmt.Sprintf("a%d", j), 0.5)
	}
	b, err := primary.PullFrames(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Snapshot == nil {
		t.Fatalf("expected snapshot transfer (cursor 0 behind compaction horizon), got %d frames", len(b.Frames))
	}
	if err := replica.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	// More commits after the snapshot: shipped as plain frames.
	commitPair(t, primary, e, "q-post", "a-post", 0.75)
	shipAll(t, primary, replica, 0)
	assertMirrors(t, primary, replica, []string{e.ID})

	// The replica's durable state holds the cursor: reopen and keep
	// shipping without a resync.
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	dir := replica.cfg.Dir
	replica2, err := Open(Config{Dir: dir, Shards: 1, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := replica2.ReplicationCursor(0), primary.ReplicationCursor(0); got != want {
		t.Fatalf("reopened replica cursor = %d, want %d", got, want)
	}
	commitPair(t, primary, e, "q-final", "a-final", 0.9)
	shipAll(t, primary, replica2, 0)
	assertMirrors(t, primary, replica2, []string{e.ID})
	if err := errors.Join(primary.Close(), replica2.Close()); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchRejectsGapsAndCorruption(t *testing.T) {
	primary := NewMemory(Config{Shards: 1})
	replica := NewMemory(Config{Shards: 1})
	e, err := primary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		commitPair(t, primary, e, fmt.Sprintf("q%d", j), "a", 0.5)
	}
	b, err := primary.PullFrames(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the first frame: the rest no longer extends cursor 0.
	gap := b
	gap.Frames = b.Frames[1:]
	if err := replica.ApplyBatch(gap); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("gap apply error = %v, want ErrReplicaGap", err)
	}
	// Corrupt a frame body: the CRC scan must reject it.
	bad := b
	bad.Frames = []Frame{{Seq: 1, Data: append([]byte{}, b.Frames[0].Data...)}}
	bad.Frames[0].Data[len(bad.Frames[0].Data)-1] ^= 0x5A
	if err := replica.ApplyBatch(bad); err == nil {
		t.Fatal("corrupt frame applied without error")
	}
	// The intact batch still applies cleanly afterwards.
	if err := replica.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	assertMirrors(t, primary, replica, []string{e.ID})
	// A cursor ahead of the primary is refused, not rewound.
	if _, err := primary.PullFrames(0, primary.ReplicationCursor(0)+1, 0); err == nil {
		t.Fatal("pull from a future cursor succeeded")
	}
}

func TestNewSessionWithID(t *testing.T) {
	st := NewMemory(Config{Shards: 4})
	e, err := st.NewSessionWithID("c000042")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "c000042" {
		t.Fatalf("id = %q", e.ID)
	}
	if _, err := st.NewSessionWithID("c000042"); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate id error = %v, want ErrSessionExists", err)
	}
	if _, err := st.NewSessionWithID(""); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, status := st.Get("c000042"); status != Found {
		t.Fatalf("lookup status = %v", status)
	}
}

// TestPromotedReplicaAllocatesFreshIDs pins the promotion contract: a
// replica that has applied the primary's records never re-issues a
// session number the primary already handed out.
func TestPromotedReplicaAllocatesFreshIDs(t *testing.T) {
	primary := NewMemory(Config{Shards: 2})
	replica := NewMemory(Config{Shards: 2})
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		e, err := primary.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		seen[e.ID] = true
	}
	shipAll(t, primary, replica, 0)
	for i := 0; i < 5; i++ {
		e, err := replica.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		if seen[e.ID] {
			t.Fatalf("promoted replica re-issued id %s", e.ID)
		}
	}
}

// TestReplicationLagTracksPrimaryCursor drives a replica that applies
// a batch while the primary keeps committing: lag reflects the
// primary cursor stamped on the last applied batch.
func TestReplicationLagTracksPrimaryCursor(t *testing.T) {
	primary := NewMemory(Config{Shards: 1})
	replica := NewMemory(Config{Shards: 1})
	e, err := primary.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	commitPair(t, primary, e, "q0", "a0", 0.5)
	shipAll(t, primary, replica, 0)
	commitPair(t, primary, e, "q1", "a1", 0.5)
	commitPair(t, primary, e, "q2", "a2", 0.5)
	// Pull one frame of the two outstanding: the batch carries the
	// primary's full cursor, so lag = 1 after applying it.
	b, err := primary.PullFrames(0, replica.ReplicationCursor(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	if lag := replica.ReplicationLag(0); lag != 1 {
		t.Fatalf("mid-catch-up lag = %d, want 1", lag)
	}
	shipAll(t, primary, replica, 0)
	if lag := replica.ReplicationLag(0); lag != 0 {
		t.Fatalf("caught-up lag = %d, want 0", lag)
	}
	if lag := primary.ReplicationLag(0); lag != 0 {
		t.Fatalf("primary lag = %d, want 0", lag)
	}
}
