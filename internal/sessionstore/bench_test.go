package sessionstore

import (
	"fmt"
	"testing"

	"github.com/reliable-cda/cda/internal/dialogue"
)

// benchCommit measures the turn-commit hot path (WAL append + frame +
// checksum). NoFsync isolates the store's own cost from the disk's
// sync latency; the fsync'd figure is what production pays per turn.
func benchCommit(b *testing.B, nofsync bool) {
	st, err := Open(Config{Dir: b.TempDir(), Shards: 8, NoFsync: nofsync})
	if err != nil {
		b.Fatal(err)
	}
	e, err := st.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doErr := e.Do(func(sess *dialogue.Session) error {
			sess.CommitTurn("how many employment where canton is Zurich",
				dialogue.IntentQuery, "there are 20", 0.8)
			return st.CommitTurn(e)
		})
		if doErr != nil {
			b.Fatal(doErr)
		}
	}
	b.StopTimer()
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSessionStoreCommit(b *testing.B)      { benchCommit(b, true) }
func BenchmarkSessionStoreCommitFsync(b *testing.B) { benchCommit(b, false) }

// BenchmarkSessionStoreRecover measures cold-start recovery of a
// directory holding 64 sessions x 8 committed turn pairs.
func BenchmarkSessionStoreRecover(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(Config{Dir: dir, Shards: 8, NoFsync: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		e, err := st.NewSession()
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			doErr := e.Do(func(sess *dialogue.Session) error {
				sess.CommitTurn(fmt.Sprintf("question %d", j),
					dialogue.IntentQuery, fmt.Sprintf("answer %d", j), 0.8)
				return st.CommitTurn(e)
			})
			if doErr != nil {
				b.Fatal(doErr)
			}
		}
	}
	// Abandon without Close: recovery replays the WAL, the realistic
	// crash-restart path.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st2, err := Open(Config{Dir: dir, Shards: 8, NoFsync: true})
		if err != nil {
			b.Fatal(err)
		}
		if st2.Len() != 64 {
			b.Fatalf("recovered %d sessions", st2.Len())
		}
		if err := st2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionStoreGet measures the lookup path (shard hash +
// TTL check) that every request pays before any work is admitted.
func BenchmarkSessionStoreGet(b *testing.B) {
	st := NewMemory(Config{Shards: 16})
	ids := make([]string, 256)
	for i := range ids {
		e, err := st.NewSession()
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = e.ID
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, status := st.Get(ids[i%len(ids)]); status != Found {
			b.Fatal("lookup failed")
		}
	}
}
