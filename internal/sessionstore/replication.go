package sessionstore

// Primary→replica WAL shipping. Every shard numbers the records it
// appends with a ship sequence — 1-based, monotonic across snapshot
// compactions and restarts (the snapshot persists the sequence at its
// horizon) — and keeps the CRC-framed bytes of the records since the
// last compaction in memory, exactly mirroring the on-disk WAL. A
// replication driver (internal/cluster, or cdarouter over HTTP) pulls
// frames after the replica's cursor with PullFrames and applies them
// on the replica store with ApplyBatch; when the replica's cursor has
// fallen behind the primary's compaction horizon the pull returns a
// full shard snapshot instead, and frame shipping resumes from there.
//
// The shipped frames are the WAL's own wire format, so the replica
// validates them with the same CRC scan recovery uses, persists them
// byte-identically into its own WAL, and replays them through the
// same Seq-idempotent path as crash recovery: applying a frame twice
// is a no-op, and a replica killed mid-apply truncates its torn tail
// on reopen exactly like a primary. Byte-identical durable state on
// both ends is therefore a consequence of the framing, not a separate
// protocol invariant to maintain.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/reliable-cda/cda/internal/vstore"
)

// Frame is one committed WAL record as shipped to a replica: the raw
// CRC-framed bytes exactly as they sit in the primary's WAL, plus its
// per-shard ship sequence.
type Frame struct {
	Seq  int64  `json:"seq"`
	Data []byte `json:"data"`
}

// ShipBatch is one replication transfer for one shard. One of three
// shapes, by how far behind the requested cursor is:
//
//   - Frames only: the records after the cursor, in order (the common
//     case — the replica is within the primary's retained tail).
//   - SnapshotRoot + Frames: the cursor predates the compaction
//     horizon and both ends are versioned. SnapshotRoot is the vstore
//     commit hash of the shard snapshot at SnapshotSeq; the replica
//     materializes it from chunks it negotiates separately (have/want
//     over chunk hashes — only missing chunks cross the wire), then
//     replays the frames on top.
//   - Snapshot (JSON) at SnapshotSeq: the unversioned fallback — the
//     whole shard state, shipped inline.
//
// PrimaryCursor is the primary's cursor at pull time so the replica
// can report its lag without a second round trip.
type ShipBatch struct {
	Shard         int     `json:"shard"`
	Snapshot      []byte  `json:"snapshot,omitempty"`
	SnapshotRoot  string  `json:"snapshot_root,omitempty"`
	SnapshotSeq   int64   `json:"snapshot_seq,omitempty"`
	Frames        []Frame `json:"frames,omitempty"`
	PrimaryCursor int64   `json:"primary_cursor"`
}

// Empty reports whether the batch carries no state to apply.
func (b ShipBatch) Empty() bool {
	return b.Snapshot == nil && b.SnapshotRoot == "" && len(b.Frames) == 0
}

// ErrReplicaGap is returned by ApplyBatch when the batch's first
// frame does not extend the replica's cursor contiguously: records
// between were lost in transit, and the driver must re-pull from the
// replica's actual cursor (which may now yield a snapshot).
var ErrReplicaGap = errors.New("sessionstore: replication frame gap; re-pull from the replica cursor")

// ReplicationCursor reports the shard's ship sequence: the number of
// records ever appended to its WAL, compactions included. A replica's
// cursor is the sequence it has durably applied through.
func (s *Store) ReplicationCursor(shard int) int64 {
	sh := s.shards[shard&(len(s.shards)-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.cursor()
}

// ReplicationLag reports how many records the shard is known to be
// behind the primary it last applied a batch from (zero on a primary,
// or when fully caught up). The remote cursor is the PrimaryCursor of
// the most recently applied batch, so lag is a lower bound during a
// partition: the primary may have committed more since.
func (s *Store) ReplicationLag(shard int) int64 {
	sh := s.shards[shard&(len(s.shards)-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if lag := sh.remoteSeq - sh.cursor(); lag > 0 {
		return lag
	}
	return 0
}

// cursor computes the shard's ship sequence. Caller holds sh.mu.
func (sh *shard) cursor() int64 { return sh.shipBase + int64(len(sh.tail)) }

// PullFrames returns the shard's records after cursor `after`, at
// most max frames (max <= 0 means all). When `after` predates the
// compaction horizon the batch instead carries a full shard snapshot
// at the current cursor. An `after` beyond the cursor is an error:
// the "replica" has state this primary never shipped (split brain or
// crossed stores), and silently rewinding it would mask that.
func (s *Store) PullFrames(shard int, after int64, max int) (ShipBatch, error) {
	if shard < 0 || shard >= len(s.shards) {
		return ShipBatch{}, fmt.Errorf("sessionstore: pull from unknown shard %d (have %d)", shard, len(s.shards))
	}
	sh := s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.cursor()
	b := ShipBatch{Shard: shard, PrimaryCursor: cur}
	if after > cur {
		return ShipBatch{}, fmt.Errorf("sessionstore: replica cursor %d ahead of shard %d cursor %d", after, shard, cur)
	}
	if after < sh.shipBase {
		if sh.versions != nil {
			// Versioned transfer: ship the root hash of the snapshot
			// committed at the last compaction plus the frames since.
			// The replica fetches only the chunks it is missing.
			if head, err := sh.versions.Head(ShardRoot(shard)); err == nil && head.Turn == int(sh.shipBase) {
				b.SnapshotRoot = string(head.Hash)
				b.SnapshotSeq = sh.shipBase
				end := len(sh.tail)
				if max > 0 && max < end {
					end = max
				}
				for i := 0; i < end; i++ {
					b.Frames = append(b.Frames, Frame{Seq: sh.shipBase + int64(i) + 1, Data: sh.tail[i]})
				}
				return b, nil
			}
			// No matching shard root (version commit failed at the last
			// compaction): fall through to the inline snapshot.
		}
		data, err := json.Marshal(sh.buildSnapshot())
		if err != nil {
			return ShipBatch{}, fmt.Errorf("sessionstore: encode replication snapshot: %w", err)
		}
		b.Snapshot = data
		b.SnapshotSeq = cur
		return b, nil
	}
	start := int(after - sh.shipBase)
	end := len(sh.tail)
	if max > 0 && start+max < end {
		end = start + max
	}
	for i := start; i < end; i++ {
		b.Frames = append(b.Frames, Frame{Seq: sh.shipBase + int64(i) + 1, Data: sh.tail[i]})
	}
	return b, nil
}

// ApplyBatch applies a pulled batch on the replica: a snapshot is
// installed wholesale (replacing the shard — the primary's state at
// SnapshotSeq is a superset of any prefix the replica held) and
// persisted; frames are CRC-validated, appended byte-identically to
// the replica's own WAL, and replayed through the same idempotent
// path as crash recovery. Frames at or below the replica's cursor are
// skipped, so re-applying a batch is harmless; a gap above the cursor
// returns ErrReplicaGap.
func (s *Store) ApplyBatch(b ShipBatch) error {
	if b.Shard < 0 || b.Shard >= len(s.shards) {
		return fmt.Errorf("sessionstore: apply to unknown shard %d (have %d)", b.Shard, len(s.shards))
	}
	sh := s.shards[b.Shard]
	// A versioned snapshot materializes from the local chunk store
	// before the shard lock is taken (vstore has its own locking); a
	// *MissingChunksError here tells the driver to negotiate chunks
	// and retry the apply.
	var (
		versionedSnap *snapshot
		adoptRoot     vstore.Hash
	)
	if b.Snapshot == nil && b.SnapshotRoot != "" {
		adoptRoot = vstore.Hash(b.SnapshotRoot)
		snap, err := s.materializeShardSnapshot(adoptRoot)
		if err != nil {
			return err
		}
		snap.ShipSeq = b.SnapshotSeq
		versionedSnap = &snap
	}
	sh.mu.Lock()
	if b.Snapshot != nil {
		if err := sh.installSnapshot(b, s.clock.Now()); err != nil {
			sh.mu.Unlock()
			return err
		}
		sh.versionAfterInstall(b.Shard, "")
	}
	if versionedSnap != nil {
		if err := sh.installSnapshotDoc(*versionedSnap, b.SnapshotSeq, s.clock.Now()); err != nil {
			sh.mu.Unlock()
			return err
		}
		sh.versionAfterInstall(b.Shard, adoptRoot)
	}
	touched := map[string]bool{}
	for _, fr := range b.Frames {
		cur := sh.cursor()
		if fr.Seq <= cur {
			continue
		}
		if fr.Seq != cur+1 {
			sh.mu.Unlock()
			return fmt.Errorf("%w: shard %d at %d got frame %d", ErrReplicaGap, b.Shard, cur, fr.Seq)
		}
		recs, _, valid := scanWAL(fr.Data)
		if len(recs) != 1 || valid != int64(len(fr.Data)) {
			sh.mu.Unlock()
			return fmt.Errorf("sessionstore: corrupt replication frame %d for shard %d", fr.Seq, b.Shard)
		}
		if sh.wal != nil {
			if err := sh.wal.appendFrame(fr.Data); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		sh.replay(recs[0], s.clock.Now())
		if recs[0].Kind == "turn" {
			touched[recs[0].ID] = true
		}
		sh.tail = append(sh.tail, fr.Data)
		sh.pending++
	}
	if sh.versions != nil && len(touched) > 0 {
		ids := make([]string, 0, len(touched))
		for id := range touched {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if e, ok := sh.sessions[id]; ok {
				sh.commitSessionVersion(sh.versions, e)
			}
		}
	}
	if b.PrimaryCursor > sh.remoteSeq {
		sh.remoteSeq = b.PrimaryCursor
	}
	sh.compactIfDue()
	maxNum := sh.maxNum
	sh.mu.Unlock()
	// Lift the shard's id horizon into the store-wide allocator (lock
	// order: s.mu is never taken while holding sh.mu), so a promoted
	// replica never re-issues an id the primary already handed out.
	s.mu.Lock()
	if maxNum > s.nextNum {
		s.nextNum = maxNum
	}
	s.mu.Unlock()
	return nil
}

// installSnapshot replaces the shard's state with a shipped inline
// JSON snapshot. Caller holds sh.mu.
func (sh *shard) installSnapshot(b ShipBatch, now time.Duration) error {
	var snap snapshot
	if err := json.Unmarshal(b.Snapshot, &snap); err != nil {
		return fmt.Errorf("sessionstore: decode replication snapshot for shard %d: %w", b.Shard, err)
	}
	return sh.installSnapshotDoc(snap, b.SnapshotSeq, now)
}

// installSnapshotDoc replaces the shard's state with a snapshot
// document at ship sequence seq and persists it (snapshot file
// published, WAL truncated) so the replica's disk recovers to the
// same cursor. Caller holds sh.mu.
func (sh *shard) installSnapshotDoc(snap snapshot, seq int64, now time.Duration) error {
	snap.ShipSeq = seq
	if sh.wal != nil {
		if err := writeSnapshot(sh.snapPath, snap, sh.nosync); err != nil {
			return err
		}
		if err := sh.wal.reset(); err != nil {
			return err
		}
	}
	sh.sessions = map[string]*Entry{}
	sh.tombstones = map[string]bool{}
	sh.maxNum = 0
	sh.applySnapshot(snap, now)
	sh.shipBase = seq
	sh.tail = nil
	sh.pending = 0
	sh.compactErr = nil
	return nil
}

// versionAfterInstall re-establishes version roots after a snapshot
// install: every installed session gets its transcript root committed
// locally, and the shard root adopts the shipped commit (preserving
// its cross-store identity) or commits a locally encoded tree when
// the batch was unversioned. Caller holds sh.mu.
func (sh *shard) versionAfterInstall(shard int, adopt vstore.Hash) {
	vs := sh.versions
	if vs == nil {
		return
	}
	ids := make([]string, 0, len(sh.sessions))
	for id := range sh.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sh.commitSessionVersion(vs, sh.sessions[id])
	}
	if adopt != "" {
		if _, err := vs.AdoptCommit(ShardRoot(shard), adopt); err != nil {
			sh.versionErr = fmt.Errorf("sessionstore: adopt shard %d root: %w", shard, err)
		}
		return
	}
	sh.commitShardVersion(vs, shard, sh.buildSnapshot())
}
