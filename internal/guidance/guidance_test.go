package guidance

import (
	"strings"
	"testing"
)

// trainedGraph records sessions where discover→clarify→analyze
// succeeds and discover→query (skipping clarification) mostly fails.
func trainedGraph() *Graph {
	g := NewGraph()
	for i := 0; i < 20; i++ {
		g.Record([]Action{ActDiscover, ActClarify, ActDescribe, ActAnalyze}, true)
	}
	for i := 0; i < 10; i++ {
		g.Record([]Action{ActDiscover, ActQuery}, false)
	}
	g.Record([]Action{ActDiscover, ActQuery}, true)
	return g
}

func TestRecordAndRates(t *testing.T) {
	g := trainedGraph()
	good := g.SuccessRate(ActDiscover, ActClarify)
	bad := g.SuccessRate(ActDiscover, ActQuery)
	if good <= bad {
		t.Errorf("clarify rate %v <= query rate %v", good, bad)
	}
	if g.Visits(ActDiscover, ActClarify) != 20 {
		t.Errorf("visits = %d", g.Visits(ActDiscover, ActClarify))
	}
	// Unseen transition gets the 0.5 prior.
	if got := g.SuccessRate(ActAnalyze, ActDiscover); got != 0.5 {
		t.Errorf("prior = %v", got)
	}
}

func TestNextSteps(t *testing.T) {
	g := trainedGraph()
	steps := g.NextSteps(ActDiscover, 3)
	if len(steps) != 3 {
		t.Fatalf("steps = %v", steps)
	}
	if steps[0].Action != ActClarify {
		t.Errorf("top step = %+v", steps[0])
	}
	if steps[0].Reason == "" || !strings.Contains(steps[0].Reason, "past sessions") {
		t.Errorf("reason = %q", steps[0].Reason)
	}
	// Query (mostly failing) must rank below clarify.
	for i, s := range steps {
		if s.Action == ActQuery && i == 0 {
			t.Error("failing transition ranked first")
		}
	}
}

func TestNextStepsExcludesSelfAndStart(t *testing.T) {
	g := NewGraph()
	steps := g.NextSteps(ActDiscover, 10)
	for _, s := range steps {
		if s.Action == ActDiscover || s.Action == ActStart {
			t.Errorf("invalid step %v", s.Action)
		}
	}
}

func TestPlanPrefersSuccessfulRoute(t *testing.T) {
	g := trainedGraph()
	path, prob := g.Plan(ActDiscover, 6)
	if len(path) == 0 || path[len(path)-1] != ActDone {
		t.Fatalf("path = %v", path)
	}
	if prob <= 0 || prob > 1 {
		t.Errorf("prob = %v", prob)
	}
	// The successful recorded route goes through clarify.
	if !containsAction(path, ActClarify) {
		t.Errorf("plan skipped clarify: %v", path)
	}
}

func TestPlanDepthZero(t *testing.T) {
	g := trainedGraph()
	if path, prob := g.Plan(ActDiscover, 0); path != nil || prob != 0 {
		t.Errorf("depth-0 plan = %v %v", path, prob)
	}
}

func TestPlanAvoidsRevisits(t *testing.T) {
	g := trainedGraph()
	path, _ := g.Plan(ActStart, 7)
	seen := map[Action]int{}
	for _, a := range path {
		seen[a]++
	}
	for a, n := range seen {
		if a != ActDone && n > 1 {
			t.Errorf("action %v visited %d times", a, n)
		}
	}
}

func TestProfileExpertise(t *testing.T) {
	novice := []string{"show me data about jobs", "what is this?"}
	if got := ProfileExpertise(novice); got != Novice {
		t.Errorf("novice = %v", got)
	}
	expert := []string{
		"run a seasonal decomposition with residual diagnostics",
		"what is the autocorrelation at lag 12",
		"group by canton and report the variance",
	}
	if got := ProfileExpertise(expert); got != Expert {
		t.Errorf("expert = %v", got)
	}
	mixed := []string{"show me data", "what about the trend?", "ok", "thanks", "bye"}
	if got := ProfileExpertise(mixed); got != Intermediate {
		t.Errorf("mixed = %v", got)
	}
	if got := ProfileExpertise(nil); got != Novice {
		t.Errorf("empty = %v", got)
	}
}

func TestVerbosity(t *testing.T) {
	if !(Verbosity(Expert) < Verbosity(Intermediate) && Verbosity(Intermediate) < Verbosity(Novice)) {
		t.Error("verbosity not decreasing with expertise")
	}
}

func TestExpertiseString(t *testing.T) {
	if Novice.String() != "novice" || Expert.String() != "expert" || Intermediate.String() != "intermediate" {
		t.Error("expertise strings wrong")
	}
}

func TestSuggestText(t *testing.T) {
	g := trainedGraph()
	s := SuggestText(g.NextSteps(ActDiscover, 2))
	if !strings.HasPrefix(s, "You could next:") {
		t.Errorf("suggest = %q", s)
	}
	if SuggestText(nil) != "" {
		t.Error("empty suggestions must render empty")
	}
}

func TestExpectedSuccess(t *testing.T) {
	g := trainedGraph()
	good := g.ExpectedSuccess([]Action{ActDiscover, ActClarify, ActDescribe, ActAnalyze})
	bad := g.ExpectedSuccess([]Action{ActDiscover, ActQuery})
	if good <= bad {
		t.Errorf("good path %v <= bad path %v", good, bad)
	}
	if good <= 0 || good > 1 {
		t.Errorf("good = %v", good)
	}
}
