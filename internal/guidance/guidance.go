// Package guidance implements the paper's P5 (Guidance): a
// graph-based model of human/system interactions whose edges carry
// success statistics from past sessions, next-step recommendation
// based on previously successful task sequences, speculative planning
// toward an analytical goal, and user-expertise profiling that adapts
// how the system talks.
package guidance

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/reliable-cda/cda/internal/textindex"
)

// Action is one step kind in an exploration session — the node type
// of the interaction graph.
type Action string

// The canonical CDA actions.
const (
	ActStart    Action = "start"
	ActDiscover Action = "discover"
	ActClarify  Action = "clarify"
	ActDescribe Action = "describe"
	ActQuery    Action = "query"
	ActAnalyze  Action = "analyze"
	ActDone     Action = "done"
)

// AllActions lists every action in a stable order.
var AllActions = []Action{ActStart, ActDiscover, ActClarify, ActDescribe, ActQuery, ActAnalyze, ActDone}

// Graph is the interaction graph: transition counts and successes
// between actions, learned from recorded sessions. Safe for
// concurrent use.
type Graph struct {
	mu      sync.RWMutex
	visits  map[[2]Action]int // transition count
	success map[[2]Action]int // transitions on sessions that reached their goal
}

// NewGraph creates an empty interaction graph.
func NewGraph() *Graph {
	return &Graph{visits: map[[2]Action]int{}, success: map[[2]Action]int{}}
}

// Record adds one session path with its outcome. A path is the
// sequence of actions taken (ActStart is prepended automatically).
func (g *Graph) Record(path []Action, success bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	prev := ActStart
	for _, a := range path {
		key := [2]Action{prev, a}
		g.visits[key]++
		if success {
			g.success[key]++
		}
		prev = a
	}
	key := [2]Action{prev, ActDone}
	g.visits[key]++
	if success {
		g.success[key]++
	}
}

// SuccessRate estimates P(session success | transition from→to) with
// add-one smoothing; unseen transitions get the prior 0.5.
func (g *Graph) SuccessRate(from, to Action) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	key := [2]Action{from, to}
	return (float64(g.success[key]) + 1) / (float64(g.visits[key]) + 2)
}

// Visits returns how often the transition was taken.
func (g *Graph) Visits(from, to Action) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.visits[[2]Action{from, to}]
}

// Step is one recommended next action with its score and reason.
type Step struct {
	Action Action
	Score  float64
	Reason string
}

// NextSteps ranks the possible next actions from the current one by
// smoothed success rate, breaking ties toward more-visited edges and
// then action order. Unvisited transitions are included (exploration)
// but rank below any visited one with equal rate.
func (g *Graph) NextSteps(from Action, k int) []Step {
	var steps []Step
	for _, a := range AllActions {
		if a == ActStart || a == from {
			continue
		}
		rate := g.SuccessRate(from, a)
		v := g.Visits(from, a)
		steps = append(steps, Step{
			Action: a,
			Score:  rate,
			Reason: fmt.Sprintf("%.0f%% of %d past sessions succeeded after %s → %s", rate*100, v, from, a),
		})
	}
	sort.SliceStable(steps, func(i, j int) bool {
		if steps[i].Score != steps[j].Score {
			return steps[i].Score > steps[j].Score
		}
		vi, vj := g.Visits(from, steps[i].Action), g.Visits(from, steps[j].Action)
		if vi != vj {
			return vi > vj
		}
		return actionOrder(steps[i].Action) < actionOrder(steps[j].Action)
	})
	if len(steps) > k {
		steps = steps[:k]
	}
	return steps
}

func actionOrder(a Action) int {
	for i, x := range AllActions {
		if x == a {
			return i
		}
	}
	return len(AllActions)
}

// Plan finds the action sequence from `from` to ActDone maximizing
// the product of transition success rates (speculative planning over
// the interaction graph), up to maxDepth steps. Returns the path
// excluding `from`, including ActDone, with its probability.
//
// Planning only walks transitions that were actually observed —
// otherwise the optimistic smoothing prior would make never-tried
// shortcuts beat well-trodden successful routes. When no observed
// path reaches ActDone, it falls back to considering all transitions.
func (g *Graph) Plan(from Action, maxDepth int) ([]Action, float64) {
	if path, prob := g.plan(from, maxDepth, true); path != nil {
		return path, prob
	}
	return g.plan(from, maxDepth, false)
}

func (g *Graph) plan(from Action, maxDepth int, observedOnly bool) ([]Action, float64) {
	if maxDepth <= 0 {
		return nil, 0
	}
	type state struct {
		path []Action
		prob float64
		at   Action
	}
	best := state{prob: -1}
	var dfs func(s state, depth int)
	dfs = func(s state, depth int) {
		if s.at == ActDone {
			if s.prob > best.prob {
				best = s
			}
			return
		}
		if depth == 0 {
			return
		}
		for _, a := range AllActions {
			if a == ActStart || a == s.at {
				continue
			}
			// Skip revisits except the terminal.
			if a != ActDone && containsAction(s.path, a) {
				continue
			}
			if observedOnly && g.Visits(s.at, a) == 0 {
				continue
			}
			p := s.prob * g.SuccessRate(s.at, a)
			dfs(state{path: append(append([]Action{}, s.path...), a), prob: p, at: a}, depth-1)
		}
	}
	dfs(state{prob: 1, at: from}, maxDepth)
	if best.prob < 0 {
		return nil, 0
	}
	return best.path, best.prob
}

func containsAction(xs []Action, a Action) bool {
	for _, x := range xs {
		if x == a {
			return true
		}
	}
	return false
}

// Expertise levels inferred from a user's language.
type Expertise int

// Levels.
const (
	Novice Expertise = iota
	Intermediate
	Expert
)

// String names the level.
func (e Expertise) String() string {
	switch e {
	case Expert:
		return "expert"
	case Intermediate:
		return "intermediate"
	default:
		return "novice"
	}
}

// technical terms that signal analytics expertise.
var expertTerms = map[string]bool{
	"seasonality": true, "decomposition": true, "residual": true,
	"autocorrelation": true, "regression": true, "aggregate": true,
	"join": true, "median": true, "percentile": true, "confidence": true,
	"variance": true, "stddev": true, "group": true, "sql": true,
	"distribution": true, "correlation": true, "trend": true,
}

// ProfileExpertise scores the user's utterances: the fraction of
// turns containing technical vocabulary maps to a level
// (≥0.5 expert, ≥0.2 intermediate, else novice). Empty input is
// Novice.
func ProfileExpertise(userTurns []string) Expertise {
	if len(userTurns) == 0 {
		return Novice
	}
	technical := 0
	for _, turn := range userTurns {
		for _, tok := range textindex.Tokenize(turn) {
			if expertTerms[tok] {
				technical++
				break
			}
		}
	}
	frac := float64(technical) / float64(len(userTurns))
	switch {
	case frac >= 0.5:
		return Expert
	case frac >= 0.2:
		return Intermediate
	default:
		return Novice
	}
}

// Verbosity returns a multiplier for explanation length appropriate
// to the expertise level: novices get fuller explanations.
func Verbosity(e Expertise) float64 {
	switch e {
	case Expert:
		return 0.5
	case Intermediate:
		return 0.75
	default:
		return 1.0
	}
}

// SuggestText renders next-step recommendations as user-facing
// suggestions.
func SuggestText(steps []Step) string {
	if len(steps) == 0 {
		return ""
	}
	var parts []string
	for _, s := range steps {
		switch s.Action {
		case ActDiscover:
			parts = append(parts, "search for additional datasets")
		case ActClarify:
			parts = append(parts, "refine what you are looking for")
		case ActDescribe:
			parts = append(parts, "get a summary of a dataset")
		case ActQuery:
			parts = append(parts, "ask a specific question about the data")
		case ActAnalyze:
			parts = append(parts, "run a trend or seasonality analysis")
		case ActDone:
			parts = append(parts, "wrap up")
		}
	}
	return "You could next: " + strings.Join(parts, "; ") + "."
}

// ExpectedSuccess estimates the success probability of an entire
// recorded path (product of edge rates) — used by E6 to compare
// guided vs unguided trajectories.
func (g *Graph) ExpectedSuccess(path []Action) float64 {
	prob := 1.0
	prev := ActStart
	for _, a := range path {
		prob *= g.SuccessRate(prev, a)
		prev = a
	}
	prob *= g.SuccessRate(prev, ActDone)
	if math.IsNaN(prob) {
		return 0
	}
	return prob
}
