package guidance

import (
	"strings"
	"testing"
)

func sessionsFixture() [][]Action {
	return [][]Action{
		{ActDiscover, ActClarify, ActDescribe, ActAnalyze},
		{ActDiscover, ActClarify, ActAnalyze},
		{ActDiscover, ActClarify, ActDescribe, ActAnalyze},
		{ActQuery, ActQuery},
		{ActDiscover, ActClarify, ActQuery},
	}
}

func TestMinePatternsSupport(t *testing.T) {
	patterns := MinePatterns(sessionsFixture(), 3, 4)
	if len(patterns) == 0 {
		t.Fatal("no patterns")
	}
	// discover→clarify appears in 4 of 5 sessions and must rank first.
	if patterns[0].String() != "discover → clarify" || patterns[0].Support != 4 {
		t.Errorf("top pattern = %v (support %d)", patterns[0], patterns[0].Support)
	}
	for _, p := range patterns {
		if p.Support < 3 {
			t.Errorf("pattern %v below minSupport", p)
		}
		if len(p.Seq) < 2 {
			t.Errorf("pattern %v too short", p)
		}
	}
}

func TestMinePatternsPerSessionDedup(t *testing.T) {
	// A pattern repeating within one session counts once.
	sessions := [][]Action{{ActQuery, ActQuery, ActQuery}}
	patterns := MinePatterns(sessions, 1, 2)
	for _, p := range patterns {
		if p.String() == "query → query" && p.Support != 1 {
			t.Errorf("support = %d, want 1", p.Support)
		}
	}
}

func TestMinePatternsEmpty(t *testing.T) {
	if got := MinePatterns(nil, 1, 3); len(got) != 0 {
		t.Errorf("patterns = %v", got)
	}
	if got := MinePatterns([][]Action{{ActQuery}}, 1, 3); len(got) != 0 {
		t.Errorf("single-action session produced %v", got)
	}
}

func TestSummarizeSessions(t *testing.T) {
	got := SummarizeSessions(sessionsFixture())
	// Supported by ≥ 3 of 5 sessions, longest such run is
	// discover→clarify (4 sessions); discover→clarify→describe→analyze
	// has support 2 < half.
	if got.String() != "discover → clarify" {
		t.Errorf("summary = %v (support %d)", got, got.Support)
	}
	// Homogeneous sessions summarize to the full path.
	uniform := [][]Action{
		{ActDiscover, ActClarify, ActAnalyze},
		{ActDiscover, ActClarify, ActAnalyze},
	}
	got = SummarizeSessions(uniform)
	if got.String() != "discover → clarify → analyze" {
		t.Errorf("uniform summary = %v", got)
	}
	if SummarizeSessions(nil).Support != 0 {
		t.Error("empty summary must be zero")
	}
}

func TestPatternStringAndKey(t *testing.T) {
	p := SequencePattern{Seq: []Action{ActDiscover, ActDone}}
	if !strings.Contains(p.String(), "→") {
		t.Errorf("string = %q", p.String())
	}
	if patternKey(p.Seq) == patternKey([]Action{ActDiscover, ActQuery}) {
		t.Error("distinct sequences share a key")
	}
}
