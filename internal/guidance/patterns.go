package guidance

import (
	"sort"
	"strings"
)

// SequencePattern is one frequent contiguous action subsequence mined
// from session logs, with its support (number of sessions containing
// it).
type SequencePattern struct {
	Seq     []Action
	Support int
}

// String renders the pattern as "discover → clarify → analyze".
func (p SequencePattern) String() string {
	parts := make([]string, len(p.Seq))
	for i, a := range p.Seq {
		parts[i] = string(a)
	}
	return strings.Join(parts, " → ")
}

// MinePatterns finds every contiguous action subsequence of length
// 2..maxLen that appears in at least minSupport sessions, sorted by
// (support desc, length desc, text). Each session counts a pattern at
// most once. This is the "sequence summarization algorithms applied
// to a set of conversations" the paper's explainability section
// proposes for data-based interpretation of interaction logs.
func MinePatterns(sessions [][]Action, minSupport, maxLen int) []SequencePattern {
	if minSupport < 1 {
		minSupport = 1
	}
	if maxLen < 2 {
		maxLen = 2
	}
	support := map[string]int{}
	seqOf := map[string][]Action{}
	for _, sess := range sessions {
		seen := map[string]bool{}
		for length := 2; length <= maxLen; length++ {
			for i := 0; i+length <= len(sess); i++ {
				sub := sess[i : i+length]
				key := patternKey(sub)
				if seen[key] {
					continue
				}
				seen[key] = true
				support[key]++
				if _, ok := seqOf[key]; !ok {
					seqOf[key] = append([]Action{}, sub...)
				}
			}
		}
	}
	var out []SequencePattern
	for key, sup := range support {
		if sup >= minSupport {
			out = append(out, SequencePattern{Seq: seqOf[key], Support: sup})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if len(out[i].Seq) != len(out[j].Seq) {
			return len(out[i].Seq) > len(out[j].Seq)
		}
		return out[i].String() < out[j].String()
	})
	return out
}

func patternKey(seq []Action) string {
	parts := make([]string, len(seq))
	for i, a := range seq {
		parts[i] = string(a)
	}
	return strings.Join(parts, "\x1f")
}

// SummarizeSessions returns the single most representative pattern:
// among patterns supported by at least half the sessions (or the
// best-supported one when none reach half), the longest one. Returns
// a zero pattern for empty input.
func SummarizeSessions(sessions [][]Action) SequencePattern {
	if len(sessions) == 0 {
		return SequencePattern{}
	}
	maxLen := 0
	for _, s := range sessions {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	patterns := MinePatterns(sessions, 1, maxLen)
	if len(patterns) == 0 {
		return SequencePattern{}
	}
	half := (len(sessions) + 1) / 2
	var candidates []SequencePattern
	for _, p := range patterns {
		if p.Support >= half {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return patterns[0]
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if len(c.Seq) > len(best.Seq) || (len(c.Seq) == len(best.Seq) && c.Support > best.Support) {
			best = c
		}
	}
	return best
}
