package ground

import (
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/kg"
	"github.com/reliable-cda/cda/internal/storage"
)

func fixtureKG() *kg.Store {
	st := kg.NewStore()
	st.Add(kg.Triple{S: "ex:Barometer", P: kg.PredLabel, O: "Swiss Labour Market Barometer", Source: "catalog"})
	st.Add(kg.Triple{S: "ex:Barometer", P: kg.PredSynonym, O: "workforce barometer", Source: "catalog"})
	st.Add(kg.Triple{S: "ex:Employment", P: kg.PredLabel, O: "employment", Source: "catalog"})
	st.Add(kg.Triple{S: "ex:LabourMarket", P: kg.PredLabel, O: "labour market", Source: "catalog"})
	// Deliberate label collision for ambiguity tests.
	st.Add(kg.Triple{S: "ex:MercuryPlanet", P: kg.PredLabel, O: "mercury", Source: "astro"})
	st.Add(kg.Triple{S: "ex:MercuryElement", P: kg.PredLabel, O: "mercury", Source: "chem"})
	return st
}

func fixtureDB() *storage.Database {
	db := storage.NewDatabase("swiss")
	emp := storage.NewTable("employment", storage.Schema{
		{Name: "year", Kind: storage.KindInt},
		{Name: "canton", Kind: storage.KindString, Description: "Swiss canton name"},
		{Name: "rate", Kind: storage.KindFloat, Description: "employment rate percentage"},
	})
	emp.MustAppendRow(storage.Int(2020), storage.Str("Zurich"), storage.Float(79.5))
	emp.MustAppendRow(storage.Int(2021), storage.Str("Geneva"), storage.Float(77.1))
	db.Put(emp)
	bar := storage.NewTable("barometer", storage.Schema{
		{Name: "month", Kind: storage.KindInt},
		{Name: "value", Kind: storage.KindFloat, Description: "barometer indicator value"},
	})
	bar.MustAppendRow(storage.Int(1), storage.Float(100.2))
	db.Put(bar)
	return db
}

func fixtureVocab() *Vocabulary {
	v := NewVocabulary()
	v.AddSynonym("working force", "labour market")
	v.AddSynonym("working force", "employment")
	v.AddSynonym("workforce", "employment")
	return v
}

func fixtureGrounder() *Grounder {
	return NewGrounder(fixtureKG(), fixtureDB(), fixtureVocab())
}

func TestVocabularyBasics(t *testing.T) {
	v := fixtureVocab()
	got := v.Canonicals("Working Force")
	if len(got) != 2 || got[0] != "labour market" {
		t.Errorf("canonicals = %v", got)
	}
	v.AddSynonym("working force", "labour market") // duplicate ignored
	if len(v.Canonicals("working force")) != 2 {
		t.Error("duplicate synonym added")
	}
	if got := v.Canonicals("unknown"); got != nil {
		t.Errorf("unknown canonicals = %v", got)
	}
}

func TestExpand(t *testing.T) {
	v := fixtureVocab()
	got := v.Expand("Give me an overview of the working force in Switzerland")
	if !strings.Contains(got, "labour market") || !strings.Contains(got, "employment") {
		t.Errorf("expanded = %q", got)
	}
	if !strings.Contains(got, "working force") {
		t.Error("expansion must preserve the original text")
	}
	plain := "completely unrelated text"
	if v.Expand(plain) != plain {
		t.Error("no-match expansion must be identity")
	}
}

func TestLinkEntitiesDirect(t *testing.T) {
	g := fixtureGrounder()
	links := g.LinkEntities("what is the Swiss labour market barometer?")
	if len(links) == 0 {
		t.Fatal("no entity links")
	}
	if links[0].Entity != "ex:Barometer" {
		t.Errorf("top link = %+v", links[0])
	}
	// The 4-gram match must outscore shorter matches.
	if links[0].Score != 1.0 {
		t.Errorf("top score = %v", links[0].Score)
	}
}

func TestLinkEntitiesViaVocabulary(t *testing.T) {
	g := fixtureGrounder()
	links := g.LinkEntities("overview of the working force")
	var found bool
	for _, l := range links {
		if l.Entity == "ex:LabourMarket" || l.Entity == "ex:Employment" {
			found = true
		}
	}
	if !found {
		t.Errorf("vocabulary-mediated linking failed: %v", links)
	}
}

func TestLinkEntitiesSuppressionOfSubspans(t *testing.T) {
	g := fixtureGrounder()
	links := g.LinkEntities("swiss labour market barometer")
	for _, l := range links {
		if l.Entity == "ex:LabourMarket" {
			t.Errorf("nested mention not suppressed: %v", links)
		}
	}
}

func TestLinkSchemaTableAndColumn(t *testing.T) {
	g := fixtureGrounder()
	links := g.LinkSchema("employment rate by canton")
	var gotTable, gotRate, gotCanton bool
	for _, l := range links {
		if l.Table == "employment" && l.Column == "" {
			gotTable = true
		}
		if l.Column == "rate" {
			gotRate = true
		}
		if l.Column == "canton" {
			gotCanton = true
		}
	}
	if !gotTable || !gotRate || !gotCanton {
		t.Errorf("schema links = %v", links)
	}
}

func TestLinkSchemaValue(t *testing.T) {
	g := fixtureGrounder()
	links := g.LinkSchema("employment in Zurich")
	var found bool
	for _, l := range links {
		if l.IsValue && l.Table == "employment" && l.Column == "canton" {
			found = true
		}
	}
	if !found {
		t.Errorf("value link missing: %v", links)
	}
}

func TestLinkSchemaVocabIndirection(t *testing.T) {
	g := fixtureGrounder()
	links := g.LinkSchema("statistics about the workforce")
	var found bool
	for _, l := range links {
		if l.Table == "employment" {
			found = true
		}
	}
	if !found {
		t.Errorf("workforce should link to employment via vocab: %v", links)
	}
}

func TestDetectAmbiguities(t *testing.T) {
	g := fixtureGrounder()
	ams := g.DetectAmbiguities("tell me about mercury")
	if len(ams) != 1 {
		t.Fatalf("ambiguities = %v", ams)
	}
	if ams[0].Term != "mercury" || len(ams[0].Options) != 2 || ams[0].Kind != "entity" {
		t.Errorf("ambiguity = %+v", ams[0])
	}
	q := ams[0].Question()
	if !strings.Contains(q, "mercury") || !strings.Contains(q, " or ") {
		t.Errorf("clarification = %q", q)
	}
	if got := g.DetectAmbiguities("swiss labour market barometer"); len(got) != 0 {
		t.Errorf("unambiguous question flagged: %v", got)
	}
}

func TestOrList(t *testing.T) {
	if orList(nil) != "something else" {
		t.Error("empty orList")
	}
	if orList([]string{"a"}) != "a" {
		t.Error("single orList")
	}
	if got := orList([]string{"a", "b", "c"}); got != "a, b, or c" {
		t.Errorf("orList = %q", got)
	}
}

func TestGroundReport(t *testing.T) {
	g := fixtureGrounder()
	r := g.Ground("overview of the working force in Zurich")
	if !r.Grounded() {
		t.Error("report should be grounded")
	}
	if r.Expanded == r.Question {
		t.Error("expansion missing from report")
	}
	empty := g.Ground("xyzzy plugh")
	if empty.Grounded() {
		t.Errorf("nonsense should not ground: %+v", empty)
	}
}

func TestNameMatches(t *testing.T) {
	cases := []struct {
		ident, phrase string
		want          bool
	}{
		{"dept_id", "dept id", true},
		{"employees", "employee", true},
		{"rate", "rates", true},
		{"canton", "zurich", false},
	}
	for _, c := range cases {
		if got := nameMatches(c.ident, c.phrase); got != c.want {
			t.Errorf("nameMatches(%q,%q) = %v", c.ident, c.phrase, got)
		}
	}
}

func TestGrounderNilSources(t *testing.T) {
	g := NewGrounder(nil, nil, nil)
	if got := g.LinkEntities("anything"); got != nil {
		t.Error("nil KG must yield no links")
	}
	if got := g.LinkSchema("anything"); got != nil {
		t.Error("nil DB must yield no links")
	}
	r := g.Ground("anything")
	if r.Grounded() {
		t.Error("nil sources must not ground")
	}
}

func TestValueScanBudget(t *testing.T) {
	g := fixtureGrounder()
	// Budget 1 indexes only the alphabetically first value (Geneva);
	// Zurich must therefore not value-link.
	g.MaxValueScan = 1
	links := g.LinkSchema("employment in Zurich")
	for _, l := range links {
		if l.IsValue && strings.EqualFold(l.Mention, "zurich") {
			t.Errorf("budget exceeded: %v", links)
		}
	}
	if len(g.LinkSchema("employment in Geneva")) == 0 {
		t.Error("first value should still be indexed under budget")
	}
}
