// Package ground implements the paper's P2 (Grounding): connecting
// natural-language requests to domain vocabulary, knowledge-graph
// entities, and schema elements, and detecting when a request is
// ambiguous enough that the system should ask for clarification
// rather than guess (the Figure 1 "I am assuming you are interested
// in..." behaviour).
package ground

import (
	"fmt"
	"sort"
	"strings"

	"github.com/reliable-cda/cda/internal/kg"
	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/textindex"
)

// Vocabulary maps domain surface forms to canonical concepts. It is
// the "domain-specific vocabulary" box of the Figure 1 architecture.
type Vocabulary struct {
	// synonyms maps a lower-cased surface phrase to canonical phrases
	// (one surface form may evoke several concepts — that is exactly
	// the ambiguity the system must detect).
	synonyms map[string][]string
}

// NewVocabulary creates an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{synonyms: make(map[string][]string)}
}

// AddSynonym registers surface → canonical. Multiple canonicals per
// surface are allowed and preserved in insertion order.
func (v *Vocabulary) AddSynonym(surface, canonical string) {
	key := strings.ToLower(strings.TrimSpace(surface))
	for _, c := range v.synonyms[key] {
		if strings.EqualFold(c, canonical) {
			return
		}
	}
	v.synonyms[key] = append(v.synonyms[key], canonical)
}

// Canonicals returns the canonical phrases for a surface form.
func (v *Vocabulary) Canonicals(surface string) []string {
	return v.synonyms[strings.ToLower(strings.TrimSpace(surface))]
}

// Expand rewrites a question by appending canonical phrases for every
// matched surface form (longest-match over 1..3-gram windows). The
// original text is preserved so nothing is lost.
func (v *Vocabulary) Expand(question string) string {
	toks := textindex.Tokenize(question)
	var additions []string
	seen := map[string]bool{}
	for n := 3; n >= 1; n-- {
		for i := 0; i+n <= len(toks); i++ {
			phrase := strings.Join(toks[i:i+n], " ")
			for _, c := range v.synonyms[phrase] {
				if !seen[c] {
					seen[c] = true
					additions = append(additions, c)
				}
			}
		}
	}
	if len(additions) == 0 {
		return question
	}
	return question + " (" + strings.Join(additions, "; ") + ")"
}

// EntityLink is one grounded mention → KG entity match.
type EntityLink struct {
	Mention string
	Entity  string
	Score   float64
}

// SchemaLink is one grounded mention → schema element match.
type SchemaLink struct {
	Mention string
	Table   string
	Column  string // empty when the mention matched the table itself
	IsValue bool   // the mention matched a cell value of the column
	Score   float64
}

// Grounder connects questions to a knowledge graph and a database
// schema.
type Grounder struct {
	KG    *kg.Store
	DB    *storage.Database
	Vocab *Vocabulary
	// MaxValueScan caps how many distinct values per column are
	// considered for value linking (keeps grounding interactive, P1).
	MaxValueScan int

	valueIndex map[string][]SchemaLink // lazily built lower(value) -> links
}

// NewGrounder wires the grounding sources together.
func NewGrounder(store *kg.Store, db *storage.Database, vocab *Vocabulary) *Grounder {
	if vocab == nil {
		vocab = NewVocabulary()
	}
	return &Grounder{KG: store, DB: db, Vocab: vocab, MaxValueScan: 10000}
}

// LinkEntities finds KG entities mentioned in the question by matching
// 1..4-gram windows against entity labels and synonyms. Longer
// matches score higher; overlapping shorter matches inside an accepted
// longer span are suppressed.
func (g *Grounder) LinkEntities(question string) []EntityLink {
	if g.KG == nil {
		return nil
	}
	toks := textindex.Tokenize(question)
	covered := make([]bool, len(toks))
	var out []EntityLink
	for n := 4; n >= 1; n-- {
		for i := 0; i+n <= len(toks); i++ {
			if anyCovered(covered, i, n) {
				continue
			}
			phrase := strings.Join(toks[i:i+n], " ")
			ents := g.KG.EntitiesByLabel(phrase)
			// Vocabulary indirection: "working force" -> "labour market"
			// -> entity labeled "labour market".
			if len(ents) == 0 {
				for _, c := range g.Vocab.Canonicals(phrase) {
					ents = append(ents, g.KG.EntitiesByLabel(c)...)
				}
			}
			if len(ents) == 0 {
				continue
			}
			for k := i; k < i+n; k++ {
				covered[k] = true
			}
			score := float64(n) / 4.0
			for _, e := range ents {
				out = append(out, EntityLink{Mention: phrase, Entity: e, Score: score})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	return out
}

func anyCovered(covered []bool, i, n int) bool {
	for k := i; k < i+n; k++ {
		if covered[k] {
			return true
		}
	}
	return false
}

// LinkSchema matches question tokens against table names, column
// names, column descriptions, and (for string columns) cell values.
func (g *Grounder) LinkSchema(question string) []SchemaLink {
	if g.DB == nil {
		return nil
	}
	g.buildValueIndex()
	toks := textindex.Tokenize(question)
	var out []SchemaLink
	addUnique := func(l SchemaLink) {
		for _, e := range out {
			if e.Table == l.Table && e.Column == l.Column && e.Mention == l.Mention && e.IsValue == l.IsValue {
				return
			}
		}
		out = append(out, l)
	}
	for n := 3; n >= 1; n-- {
		for i := 0; i+n <= len(toks); i++ {
			phrase := strings.Join(toks[i:i+n], " ")
			variants := append([]string{phrase}, g.Vocab.Canonicals(phrase)...)
			for _, p := range variants {
				pl := strings.ToLower(p)
				for _, t := range g.DB.Tables() {
					if nameMatches(t.Name, pl) {
						addUnique(SchemaLink{Mention: phrase, Table: t.Name, Score: 1.0})
					}
					for _, col := range t.Schema() {
						if nameMatches(col.Name, pl) {
							addUnique(SchemaLink{Mention: phrase, Table: t.Name, Column: col.Name, Score: 0.9})
						} else if col.Description != "" && strings.Contains(strings.ToLower(col.Description), pl) && len(pl) > 3 {
							addUnique(SchemaLink{Mention: phrase, Table: t.Name, Column: col.Name, Score: 0.5})
						}
					}
				}
				for _, l := range g.valueIndex[pl] {
					l.Mention = phrase
					addUnique(l)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// nameMatches compares an identifier against a phrase, tolerating
// snake_case vs space separation and simple plural 's'.
func nameMatches(ident, phrase string) bool {
	id := strings.ToLower(strings.ReplaceAll(ident, "_", " "))
	if id == phrase {
		return true
	}
	// singular/plural tolerance both ways
	if strings.TrimSuffix(id, "s") == strings.TrimSuffix(phrase, "s") {
		return true
	}
	return false
}

func (g *Grounder) buildValueIndex() {
	if g.valueIndex != nil {
		return
	}
	g.valueIndex = make(map[string][]SchemaLink)
	budget := g.MaxValueScan
	for _, t := range g.DB.Tables() {
		for _, col := range t.Schema() {
			if col.Kind != storage.KindString {
				continue
			}
			vals, err := t.DistinctStrings(col.Name)
			if err != nil {
				continue
			}
			for _, v := range vals {
				if budget <= 0 {
					return
				}
				budget--
				key := strings.ToLower(v)
				g.valueIndex[key] = append(g.valueIndex[key],
					SchemaLink{Table: t.Name, Column: col.Name, IsValue: true, Score: 0.8})
			}
		}
	}
}

// Ambiguity describes a request the system should clarify before
// answering (P5 Guidance feeding back into P2 Grounding).
type Ambiguity struct {
	Term    string
	Options []string
	// Kind is "entity" (several KG entities share the label) or
	// "schema" (several tables/columns match the same mention).
	Kind string
}

// Question renders the clarification question a dialogue layer can ask.
func (a Ambiguity) Question() string {
	return fmt.Sprintf("By %q, do you mean %s?", a.Term, orList(a.Options))
}

func orList(opts []string) string {
	switch len(opts) {
	case 0:
		return "something else"
	case 1:
		return opts[0]
	case 2:
		return opts[0] + " or " + opts[1]
	default:
		return strings.Join(opts[:len(opts)-1], ", ") + ", or " + opts[len(opts)-1]
	}
}

// DetectAmbiguities reports mentions that ground to more than one
// entity or more than one table.
func (g *Grounder) DetectAmbiguities(question string) []Ambiguity {
	var out []Ambiguity
	byMention := map[string][]string{}
	for _, l := range g.LinkEntities(question) {
		byMention[l.Mention] = appendUnique(byMention[l.Mention], l.Entity)
	}
	mentions := sortedKeys(byMention)
	for _, m := range mentions {
		if ents := byMention[m]; len(ents) > 1 {
			out = append(out, Ambiguity{Term: m, Options: ents, Kind: "entity"})
		}
	}
	byMentionTables := map[string][]string{}
	for _, l := range g.LinkSchema(question) {
		if l.Column == "" {
			byMentionTables[l.Mention] = appendUnique(byMentionTables[l.Mention], l.Table)
		}
	}
	for _, m := range sortedKeys(byMentionTables) {
		if ts := byMentionTables[m]; len(ts) > 1 {
			out = append(out, Ambiguity{Term: m, Options: ts, Kind: "schema"})
		}
	}
	return out
}

func appendUnique(xs []string, x string) []string {
	for _, e := range xs {
		if e == x {
			return xs
		}
	}
	return append(xs, x)
}

func sortedKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Report bundles everything grounding produced for one question; the
// core pipeline attaches it to the answer's provenance.
type Report struct {
	Question    string
	Expanded    string
	Entities    []EntityLink
	Schema      []SchemaLink
	Ambiguities []Ambiguity
}

// Grounded reports whether at least one entity or schema element was
// linked.
func (r *Report) Grounded() bool {
	return len(r.Entities) > 0 || len(r.Schema) > 0
}

// Ground runs the full grounding pass over a question.
func (g *Grounder) Ground(question string) *Report {
	return &Report{
		Question:    question,
		Expanded:    g.Vocab.Expand(question),
		Entities:    g.LinkEntities(question),
		Schema:      g.LinkSchema(question),
		Ambiguities: g.DetectAmbiguities(question),
	}
}
