// Package workload generates the synthetic datasets, schemas,
// question sets, and vector collections every experiment runs on —
// the substitutes for the paper's proprietary data sources (see
// DESIGN.md §2). All generators are seeded and deterministic.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/reliable-cda/cda/internal/catalog"
	"github.com/reliable-cda/cda/internal/docqa"
	"github.com/reliable-cda/cda/internal/ground"
	"github.com/reliable-cda/cda/internal/kg"
	"github.com/reliable-cda/cda/internal/storage"
)

// BarometerPeriod is the seasonal period of the synthetic Swiss
// Labour Market Barometer, matching the Figure 1 dialogue ("the best
// fitted seasonal period is 6").
const BarometerPeriod = 6

// BarometerParams shapes the synthetic indicator series.
type BarometerParams struct {
	Months int     // series length
	Level  float64 // base level
	Slope  float64 // per-month trend
	Amp    float64 // seasonal amplitude
	Noise  float64 // residual std dev
	Seed   int64
}

// DefaultBarometerParams reproduces the Figure 1 numbers: 120 monthly
// points ("the last 10 years"), period 6, and noise tuned so the
// seasonal-strength confidence lands near 0.9.
func DefaultBarometerParams() BarometerParams {
	return BarometerParams{Months: 120, Level: 100, Slope: 0.05, Amp: 8, Noise: 2.3, Seed: 42}
}

// BarometerSeries generates the raw values.
func BarometerSeries(p BarometerParams) []float64 {
	rng := rand.New(rand.NewSource(p.Seed))
	xs := make([]float64, p.Months)
	for i := range xs {
		xs[i] = p.Level + p.Slope*float64(i) +
			p.Amp*math.Sin(2*math.Pi*float64(i)/float64(BarometerPeriod)) +
			p.Noise*rng.NormFloat64()
	}
	return xs
}

// BarometerTable wraps the series in a storage table (month, value).
func BarometerTable(p BarometerParams) *storage.Table {
	t := storage.NewTable("barometer", storage.Schema{
		{Name: "month", Kind: storage.KindInt, Description: "months since series start"},
		{Name: "value", Kind: storage.KindFloat, Description: "barometer indicator value"},
	})
	t.Description = "Swiss Labour Market Barometer, monthly indicator"
	for i, v := range BarometerSeries(p) {
		t.MustAppendRow(storage.Int(int64(i+1)), storage.Float(v))
	}
	return t
}

// EmploymentTable generates the "employment type distribution"
// dataset of Figure 1's first answer.
func EmploymentTable(seed int64) *storage.Table {
	rng := rand.New(rand.NewSource(seed))
	t := storage.NewTable("employment", storage.Schema{
		{Name: "year", Kind: storage.KindInt, Description: "calendar year"},
		{Name: "canton", Kind: storage.KindString, Description: "Swiss canton"},
		{Name: "employment_type", Kind: storage.KindString, Description: "full time or part time"},
		{Name: "employees", Kind: storage.KindInt, Description: "employees older than 15"},
	})
	t.Description = "Employment type distribution for employees older than 15"
	cantons := []string{"Zurich", "Bern", "Geneva", "Vaud", "Ticino"}
	types := []string{"full_time", "part_time"}
	for year := 2015; year <= 2024; year++ {
		for _, c := range cantons {
			for _, ty := range types {
				base := 50000 + rng.Intn(150000)
				t.MustAppendRow(storage.Int(int64(year)), storage.Str(c), storage.Str(ty), storage.Int(int64(base)))
			}
		}
	}
	return t
}

// SwissDomain bundles everything the Figure 1 scenario needs: the
// data, the catalog entries, the knowledge graph, and the domain
// vocabulary.
type SwissDomain struct {
	DB      *storage.Database
	Catalog *catalog.Catalog
	KG      *kg.Store
	Vocab   *ground.Vocabulary
	// Documents are the methodology notes backing extractive QA.
	Documents []docqa.Document
	// Now is the logical epoch used for freshness (months).
	Now int
}

// BarometerSource is the citable origin of the synthetic barometer.
const BarometerSource = "https://www.arbeit.swiss/secoalv/en/home/schweizer-arbeitsmarktbarometer.html"

// NewSwissDomain builds the deterministic Figure 1 world.
func NewSwissDomain(seed int64) *SwissDomain {
	db := storage.NewDatabase("swiss")
	bar := BarometerTable(DefaultBarometerParams())
	emp := EmploymentTable(seed + 1)
	db.Put(bar)
	db.Put(emp)

	now := 120
	cat := catalog.New()
	cat.Add(catalog.Dataset{
		ID: "barometer", Name: "Swiss Labour Market Barometer",
		Description: "monthly leading indicator based on a survey of labour market experts from selected employment centers in 22 cantons",
		Source:      BarometerSource,
		Tags:        []string{"labour", "market", "employment", "indicator", "monthly"},
		Table:       bar, UpdatedAt: now, Cadence: 1,
	})
	cat.Add(catalog.Dataset{
		ID: "employment", Name: "Employment type distribution",
		Description: "distribution of full-time and part-time employment for employees older than 15 years, by canton and year",
		Source:      "https://www.bfs.admin.ch/",
		Tags:        []string{"employment", "demographics", "workforce"},
		Table:       emp, UpdatedAt: now - 2, Cadence: 12,
	})
	cat.Add(catalog.Dataset{
		ID: "chocolate", Name: "Chocolate exports",
		Description: "annual chocolate export volumes by destination country",
		Source:      "https://www.chocosuisse.ch/",
		Tags:        []string{"food", "trade"},
		UpdatedAt:   now - 6, Cadence: 12,
	})

	st := kg.NewStore()
	st.Add(kg.Triple{S: "swiss:Barometer", P: kg.PredType, O: "swiss:Indicator", Source: "catalog"})
	st.Add(kg.Triple{S: "swiss:Indicator", P: kg.PredSubClassOf, O: "swiss:Dataset", Source: "ontology"})
	st.Add(kg.Triple{S: "swiss:Barometer", P: kg.PredLabel, O: "Swiss Labour Market Barometer", Source: "catalog"})
	st.Add(kg.Triple{S: "swiss:Barometer", P: kg.PredSynonym, O: "workforce barometer", Source: "catalog"})
	st.Add(kg.Triple{S: "swiss:Barometer", P: kg.PredSynonym, O: "barometer", Source: "catalog"})
	st.Add(kg.Triple{S: "swiss:Barometer", P: kg.PredComment,
		O: "a monthly leading indicator based on a survey of labour market experts from selected employment centers in 22 cantons", Source: BarometerSource})
	st.Add(kg.Triple{S: "swiss:Employment", P: kg.PredLabel, O: "employment", Source: "catalog"})
	st.Add(kg.Triple{S: "swiss:Employment", P: kg.PredType, O: "swiss:Topic", Source: "catalog"})
	st.Add(kg.Triple{S: "swiss:LabourMarket", P: kg.PredLabel, O: "labour market", Source: "catalog"})
	st.Add(kg.Triple{S: "swiss:LabourMarket", P: kg.PredType, O: "swiss:Topic", Source: "catalog"})
	st.Add(kg.Triple{S: "swiss:Barometer", P: "swiss:about", O: "swiss:LabourMarket", Source: "catalog"})
	st.Infer()

	vocab := ground.NewVocabulary()
	vocab.AddSynonym("working force", "employment")
	vocab.AddSynonym("working force", "labour market")
	vocab.AddSynonym("workforce", "employment")
	vocab.AddSynonym("workforce", "labour market")
	vocab.AddSynonym("labor market", "labour market")
	vocab.AddSynonym("jobs", "employment")

	docs := []docqa.Document{
		{
			ID: "barometer-methodology", Source: BarometerSource,
			Text: "The Swiss Labour Market Barometer is computed from a monthly survey of labour market experts. " +
				"Experts in 22 cantonal employment centers report their hiring expectations. " +
				"Responses are aggregated into a diffusion index centered at 100.",
		},
		{
			ID: "employment-notes", Source: "https://www.bfs.admin.ch/",
			Text: "Employment statistics cover employees older than 15 years. " +
				"Full-time and part-time positions are reported separately for each canton.",
		},
	}

	return &SwissDomain{DB: db, Catalog: cat, KG: st, Vocab: vocab, Documents: docs, Now: now}
}

// Figure1Turns returns the four user utterances of the paper's
// example dialogue, in order.
func Figure1Turns() []string {
	return []string{
		"Give me an overview of the working force in Switzerland",
		"What is the Swiss workforce barometer?",
		"I am interested in the barometer",
		"Can you please give me the seasonality insights, such as overall trend, etc.",
	}
}

// SparseBarometerTable prepends `gapYears` years of sparse,
// unusable history (one point per year) before the dense series —
// the data condition behind Figure 1's "I am only reporting data for
// the last 10 years since there is no sufficient data earlier".
func SparseBarometerTable(p BarometerParams, gapYears int) *storage.Table {
	t := storage.NewTable("barometer_full", storage.Schema{
		{Name: "month", Kind: storage.KindInt},
		{Name: "value", Kind: storage.KindFloat},
	})
	rng := rand.New(rand.NewSource(p.Seed + 7))
	month := 1
	for y := 0; y < gapYears; y++ {
		// One observation per year: far below sufficiency.
		t.MustAppendRow(storage.Int(int64(month)), storage.Float(p.Level+rng.NormFloat64()*p.Noise))
		month += 12
	}
	for i, v := range BarometerSeries(p) {
		_ = i
		t.MustAppendRow(storage.Int(int64(month)), storage.Float(v))
		month++
	}
	return t
}

// DatasetLabel formats a dataset reference for dialogue text.
func DatasetLabel(d *catalog.Dataset) string {
	return fmt.Sprintf("%s (%s)", d.Name, d.ID)
}
