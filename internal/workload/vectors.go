package workload

import (
	"math/rand"

	"github.com/reliable-cda/cda/internal/vectorindex"
)

// VectorParams configures the clustered vector workload used by the
// E2 similarity-search experiment.
type VectorParams struct {
	N        int // indexed vectors
	Queries  int
	Dim      int
	Clusters int
	Spread   float64 // intra-cluster std dev
	Scale    float64 // inter-cluster scale
	Seed     int64
}

// DefaultVectorParams matches the paper-scale laptop workload.
func DefaultVectorParams() VectorParams {
	return VectorParams{N: 20000, Queries: 100, Dim: 32, Clusters: 16, Spread: 1, Scale: 5, Seed: 1}
}

// GenVectors draws data and queries from the same Gaussian-mixture
// distribution (queries are held out, not indexed).
func GenVectors(p VectorParams) (data, queries []vectorindex.Vector) {
	rng := rand.New(rand.NewSource(p.Seed))
	centers := make([]vectorindex.Vector, p.Clusters)
	for i := range centers {
		c := make(vectorindex.Vector, p.Dim)
		for d := range c {
			c[d] = float32(rng.NormFloat64() * p.Scale)
		}
		centers[i] = c
	}
	draw := func() vectorindex.Vector {
		ctr := centers[rng.Intn(len(centers))]
		v := make(vectorindex.Vector, p.Dim)
		for d := range v {
			v[d] = ctr[d] + float32(rng.NormFloat64()*p.Spread)
		}
		return v
	}
	data = make([]vectorindex.Vector, p.N)
	for i := range data {
		data[i] = draw()
	}
	queries = make([]vectorindex.Vector, p.Queries)
	for i := range queries {
		queries[i] = draw()
	}
	return data, queries
}
