package workload

import (
	"math/rand"

	"github.com/reliable-cda/cda/internal/catalog"
)

// DiscoveryQuery is one labeled dataset-discovery task.
type DiscoveryQuery struct {
	Text   string
	Target string // dataset ID the query is about
	// Mismatch marks queries phrased with vocabulary that does not
	// appear verbatim in the target's description (the case dense
	// retrieval exists for).
	Mismatch bool
}

// DiscoveryWorkload bundles a catalog with labeled queries.
type DiscoveryWorkload struct {
	Catalog *catalog.Catalog
	Queries []DiscoveryQuery
	Now     int
}

type discSpec struct {
	id, name, desc string
	tags           []string
	// matched queries share vocabulary with the description;
	// mismatched ones are paraphrases with morphological or synonym
	// shifts.
	matched    []string
	mismatched []string
}

var discPool = []discSpec{
	{
		id: "barometer", name: "Swiss Labour Market Barometer",
		desc: "monthly leading indicator from a survey of labour market experts",
		tags: []string{"labour", "market", "indicator"},
		matched: []string{
			"labour market indicator survey",
			"monthly labour market barometer",
		},
		mismatched: []string{
			"barometric employment signals",
			"workforce temperature gauge",
		},
	},
	{
		id: "emptype", name: "Employment type distribution",
		desc: "distribution of employment types for employees older than fifteen",
		tags: []string{"employment", "demographics"},
		matched: []string{
			"employment type distribution",
			"distribution of employment for employees",
		},
		mismatched: []string{
			"how people are employed by category",
			"employee categorisation statistics",
		},
	},
	{
		id: "hospital", name: "Hospital stays",
		desc: "inpatient hospital stay durations and billing by ward",
		tags: []string{"health", "hospital"},
		matched: []string{
			"hospital stay durations",
			"billing by hospital ward",
		},
		mismatched: []string{
			"hospitalization length records",
			"inpatients and their bills",
		},
	},
	{
		id: "energy", name: "Electricity consumption",
		desc: "household electricity consumption by canton and month",
		tags: []string{"energy", "electricity"},
		matched: []string{
			"household electricity consumption",
			"electricity use by canton",
		},
		mismatched: []string{
			"how much power homes consume",
			"electrical usage of households",
		},
	},
	{
		id: "tourism", name: "Overnight stays in tourism",
		desc: "hotel overnight stays of foreign and domestic tourists",
		tags: []string{"tourism", "hotels"},
		matched: []string{
			"hotel overnight stays",
			"tourist overnight statistics",
		},
		mismatched: []string{
			"touristic accommodation nights",
			"where travellers sleep",
		},
	},
	{
		id: "transport", name: "Rail passenger volumes",
		desc: "rail passenger volumes on major routes per quarter",
		tags: []string{"transport", "rail"},
		matched: []string{
			"rail passenger volumes",
			"passengers on rail routes",
		},
		mismatched: []string{
			"train ridership figures",
			"railway travellers per quarter",
		},
	},
}

// GenDiscovery builds a discovery workload of n queries sampled from
// the pool, deterministic in seed.
func GenDiscovery(n int, seed int64) *DiscoveryWorkload {
	rng := rand.New(rand.NewSource(seed))
	now := 10
	cat := catalog.New()
	for _, s := range discPool {
		cat.Add(catalog.Dataset{
			ID: s.id, Name: s.name, Description: s.desc, Tags: s.tags,
			UpdatedAt: now, Cadence: 12,
		})
	}
	w := &DiscoveryWorkload{Catalog: cat, Now: now}
	for len(w.Queries) < n {
		s := discPool[rng.Intn(len(discPool))]
		if rng.Float64() < 0.5 {
			w.Queries = append(w.Queries, DiscoveryQuery{
				Text: s.matched[rng.Intn(len(s.matched))], Target: s.id,
			})
		} else {
			w.Queries = append(w.Queries, DiscoveryQuery{
				Text: s.mismatched[rng.Intn(len(s.mismatched))], Target: s.id, Mismatch: true,
			})
		}
	}
	return w
}
