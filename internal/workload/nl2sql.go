package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/reliable-cda/cda/internal/ground"
	"github.com/reliable-cda/cda/internal/storage"
)

// tableSpec is one generator blueprint for a relational table.
type tableSpec struct {
	name       string
	synonyms   []string
	strCols    []strColSpec
	numCols    []numColSpec
	rowsMin    int
	rowsSpread int
}

type strColSpec struct {
	name     string
	synonyms []string
	values   []string
}

type numColSpec struct {
	name     string
	synonyms []string
	lo, hi   float64
	isInt    bool
}

var tablePool = []tableSpec{
	{
		name: "employees", synonyms: []string{"staff", "personnel"},
		strCols: []strColSpec{
			{name: "department", synonyms: []string{"unit", "division"}, values: []string{"Engineering", "Sales", "Support", "Finance"}},
			{name: "city", synonyms: []string{"location"}, values: []string{"Zurich", "Bern", "Geneva"}},
		},
		numCols: []numColSpec{
			{name: "salary", synonyms: []string{"pay", "wage"}, lo: 50, hi: 200},
			{name: "age", synonyms: []string{"years"}, lo: 20, hi: 65, isInt: true},
		},
		rowsMin: 40, rowsSpread: 40,
	},
	{
		name: "products", synonyms: []string{"items", "goods"},
		strCols: []strColSpec{
			{name: "category", synonyms: []string{"kind", "type"}, values: []string{"Food", "Tools", "Books", "Toys"}},
		},
		numCols: []numColSpec{
			{name: "price", synonyms: []string{"cost"}, lo: 1, hi: 500},
			{name: "stock", synonyms: []string{"inventory"}, lo: 0, hi: 1000, isInt: true},
		},
		rowsMin: 30, rowsSpread: 50,
	},
	{
		name: "patients", synonyms: []string{"cases"},
		strCols: []strColSpec{
			{name: "ward", synonyms: []string{"unit"}, values: []string{"Cardiology", "Oncology", "Pediatrics"}},
		},
		numCols: []numColSpec{
			{name: "stay_days", synonyms: []string{"duration"}, lo: 1, hi: 60, isInt: true},
			{name: "bill", synonyms: []string{"charge"}, lo: 100, hi: 90000},
		},
		rowsMin: 25, rowsSpread: 40,
	},
	{
		name: "orders", synonyms: []string{"purchases"},
		strCols: []strColSpec{
			{name: "status", synonyms: []string{"state"}, values: []string{"open", "shipped", "returned"}},
			{name: "region", synonyms: []string{"area"}, values: []string{"north", "south", "east", "west"}},
		},
		numCols: []numColSpec{
			{name: "amount", synonyms: []string{"value"}, lo: 5, hi: 2500},
		},
		rowsMin: 50, rowsSpread: 60,
	},
}

// NL2SQLWorkload is a generated benchmark instance: a database, the
// vocabulary of synonyms the questions may use, and labeled
// question/gold-SQL pairs.
type NL2SQLWorkload struct {
	DB    *storage.Database
	Vocab *ground.Vocabulary
	Pairs []QA
	// Fabrications are plausible-but-wrong identifiers for the noisy
	// channel (column names from the OTHER tables).
	Fabrications []string
}

// QA is one labeled translation task.
type QA struct {
	Question string
	GoldSQL  string
	// UsesSynonyms marks questions whose surface forms need the
	// vocabulary to resolve (the grounding-dependent subset).
	UsesSynonyms bool
}

// GenNL2SQL builds a workload with n question/SQL pairs over the full
// table pool. synonymRate is the probability a mention uses a synonym
// instead of the schema name.
func GenNL2SQL(n int, synonymRate float64, seed int64) *NL2SQLWorkload {
	rng := rand.New(rand.NewSource(seed))
	db := storage.NewDatabase("bench")
	vocab := ground.NewVocabulary()
	var fabrications []string

	for _, spec := range tablePool {
		schema := storage.Schema{{Name: "id", Kind: storage.KindInt}}
		for _, sc := range spec.strCols {
			schema = append(schema, storage.ColumnDef{Name: sc.name, Kind: storage.KindString})
		}
		for _, nc := range spec.numCols {
			kind := storage.KindFloat
			if nc.isInt {
				kind = storage.KindInt
			}
			schema = append(schema, storage.ColumnDef{Name: nc.name, Kind: kind})
		}
		t := storage.NewTable(spec.name, schema)
		rows := spec.rowsMin + rng.Intn(spec.rowsSpread+1)
		for r := 0; r < rows; r++ {
			row := []storage.Value{storage.Int(int64(r + 1))}
			for _, sc := range spec.strCols {
				row = append(row, storage.Str(sc.values[rng.Intn(len(sc.values))]))
			}
			for _, nc := range spec.numCols {
				v := nc.lo + rng.Float64()*(nc.hi-nc.lo)
				if nc.isInt {
					row = append(row, storage.Int(int64(v)))
				} else {
					row = append(row, storage.Float(float64(int(v*100))/100))
				}
			}
			t.MustAppendRow(row...)
		}
		db.Put(t)

		for _, syn := range spec.synonyms {
			vocab.AddSynonym(syn, spec.name)
		}
		for _, sc := range spec.strCols {
			for _, syn := range sc.synonyms {
				vocab.AddSynonym(syn, sc.name)
			}
			fabrications = append(fabrications, sc.name+"x")
		}
		for _, nc := range spec.numCols {
			for _, syn := range nc.synonyms {
				vocab.AddSynonym(syn, nc.name)
			}
			fabrications = append(fabrications, nc.name+"s2")
		}
	}

	w := &NL2SQLWorkload{DB: db, Vocab: vocab, Fabrications: fabrications}
	for len(w.Pairs) < n {
		w.Pairs = append(w.Pairs, genPair(rng, synonymRate))
	}
	return w
}

// surface picks the schema name or, with probability rate, one of its
// synonyms, reporting whether a synonym was used.
func surface(rng *rand.Rand, rate float64, name string, synonyms []string) (string, bool) {
	if len(synonyms) > 0 && rng.Float64() < rate {
		return synonyms[rng.Intn(len(synonyms))], true
	}
	return name, false
}

func genPair(rng *rand.Rand, synRate float64) QA {
	spec := tablePool[rng.Intn(len(tablePool))]
	tSurf, tSyn := surface(rng, synRate, spec.name, spec.synonyms)
	usesSyn := tSyn

	kind := rng.Intn(3)
	var question, gold string
	switch kind {
	case 0: // count
		question = fmt.Sprintf("how many %s", tSurf)
		gold = fmt.Sprintf("SELECT COUNT(*) FROM %s", spec.name)
		if len(spec.strCols) > 0 && rng.Float64() < 0.6 {
			sc := spec.strCols[rng.Intn(len(spec.strCols))]
			val := sc.values[rng.Intn(len(sc.values))]
			cSurf, cSyn := surface(rng, synRate, sc.name, sc.synonyms)
			usesSyn = usesSyn || cSyn
			question += fmt.Sprintf(" where %s is %s", cSurf, val)
			gold += fmt.Sprintf(" WHERE %s = '%s'", sc.name, val)
		}
	case 1: // aggregate
		nc := spec.numCols[rng.Intn(len(spec.numCols))]
		aggWord := []string{"average", "total", "maximum", "minimum"}[rng.Intn(4)]
		aggSQL := map[string]string{"average": "AVG", "total": "SUM", "maximum": "MAX", "minimum": "MIN"}[aggWord]
		ncSurf, ncSyn := surface(rng, synRate, nc.name, nc.synonyms)
		usesSyn = usesSyn || ncSyn
		question = fmt.Sprintf("what is the %s %s in %s", aggWord, ncSurf, tSurf)
		gold = fmt.Sprintf("SELECT %s(%s) FROM %s", aggSQL, nc.name, spec.name)
		switch {
		case len(spec.strCols) > 0 && rng.Float64() < 0.4:
			sc := spec.strCols[rng.Intn(len(spec.strCols))]
			val := sc.values[rng.Intn(len(sc.values))]
			cSurf, cSyn := surface(rng, synRate, sc.name, sc.synonyms)
			usesSyn = usesSyn || cSyn
			question += fmt.Sprintf(" where %s is %s", cSurf, val)
			gold += fmt.Sprintf(" WHERE %s = '%s'", sc.name, val)
		case len(spec.strCols) > 0 && rng.Float64() < 0.3:
			sc := spec.strCols[rng.Intn(len(spec.strCols))]
			gSurf, gSyn := surface(rng, synRate, sc.name, sc.synonyms)
			usesSyn = usesSyn || gSyn
			question += fmt.Sprintf(" by %s", gSurf)
			gold = fmt.Sprintf("SELECT %s, %s(%s) FROM %s GROUP BY %s", sc.name, aggSQL, nc.name, spec.name, sc.name)
		}
	default: // list
		var cols, colSurfs []string
		ncount := 1 + rng.Intn(2)
		for i := 0; i < ncount && i < len(spec.numCols); i++ {
			nc := spec.numCols[i]
			s, syn := surface(rng, synRate, nc.name, nc.synonyms)
			usesSyn = usesSyn || syn
			cols = append(cols, nc.name)
			colSurfs = append(colSurfs, s)
		}
		question = fmt.Sprintf("list the %s of %s", strings.Join(colSurfs, " and "), tSurf)
		gold = fmt.Sprintf("SELECT %s FROM %s", strings.Join(cols, ", "), spec.name)
		if len(spec.strCols) > 0 && rng.Float64() < 0.5 {
			sc := spec.strCols[rng.Intn(len(spec.strCols))]
			val := sc.values[rng.Intn(len(sc.values))]
			cSurf, cSyn := surface(rng, synRate, sc.name, sc.synonyms)
			usesSyn = usesSyn || cSyn
			question += fmt.Sprintf(" where %s is %s", cSurf, val)
			gold += fmt.Sprintf(" WHERE %s = '%s'", sc.name, val)
		}
	}
	return QA{Question: question, GoldSQL: gold, UsesSynonyms: usesSyn}
}
