package workload

import "math/rand"

// BiasLogs is a synthetic conversation-log corpus with known planted
// biases, for evaluating the bias analyzer (E10).
type BiasLogs struct {
	Corpus []string
	// GroupTerms are all demographic-style terms mentioned in the
	// corpus; a subset carries planted negative associations.
	GroupTerms []string
	// Planted maps group term → the negative descriptor planted for
	// it (ground truth). Groups not present here are clean.
	Planted map[string]string
}

var biasGroups = []string{"northerners", "southerners", "easterners", "westerners", "islanders", "highlanders"}
var negDescriptors = []string{"lazy", "unreliable", "dishonest", "incompetent", "aggressive"}
var neutralFill = []string{
	"the survey covers employment in all regions this quarter",
	"monthly labour statistics were updated for every canton",
	"dataset freshness is checked before each recommendation",
	"seasonal decomposition ran on the indicator series",
	"users asked about wage distributions and participation rates",
}

// GenBiasLogs plants a negative association for `biased` of the
// groups and leaves the rest clean, mixing in neutral chatter.
// perGroup controls the number of mentions per group.
func GenBiasLogs(biased, perGroup int, seed int64) *BiasLogs {
	rng := rand.New(rand.NewSource(seed))
	if biased > len(biasGroups) {
		biased = len(biasGroups)
	}
	out := &BiasLogs{Planted: map[string]string{}}
	out.GroupTerms = append(out.GroupTerms, biasGroups...)
	for gi, g := range biasGroups {
		plantedDesc := ""
		if gi < biased {
			plantedDesc = negDescriptors[rng.Intn(len(negDescriptors))]
			out.Planted[g] = plantedDesc
		}
		for i := 0; i < perGroup; i++ {
			if plantedDesc != "" && rng.Float64() < 0.7 {
				out.Corpus = append(out.Corpus, "many said the "+g+" applicants seemed "+plantedDesc+" during interviews")
			} else {
				out.Corpus = append(out.Corpus, "the "+g+" applicants joined the program in several cantons")
			}
			out.Corpus = append(out.Corpus, neutralFill[rng.Intn(len(neutralFill))])
		}
	}
	rng.Shuffle(len(out.Corpus), func(i, j int) {
		out.Corpus[i], out.Corpus[j] = out.Corpus[j], out.Corpus[i]
	})
	return out
}
