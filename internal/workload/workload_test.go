package workload

import (
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/nl2sql"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/timeseries"
)

func TestBarometerSeriesShape(t *testing.T) {
	p := DefaultBarometerParams()
	xs := BarometerSeries(p)
	if len(xs) != 120 {
		t.Fatalf("len = %d", len(xs))
	}
	// Figure 1 ground truth: detector finds period 6 with confidence
	// in the vicinity of 0.9.
	s, err := timeseries.DetectSeasonality(xs, 24)
	if err != nil {
		t.Fatal(err)
	}
	if s.Period != BarometerPeriod {
		t.Errorf("period = %d", s.Period)
	}
	if s.Confidence < 0.8 || s.Confidence > 0.98 {
		t.Errorf("confidence = %v, want ≈0.9", s.Confidence)
	}
}

func TestBarometerDeterministic(t *testing.T) {
	a := BarometerSeries(DefaultBarometerParams())
	b := BarometerSeries(DefaultBarometerParams())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("series not deterministic")
		}
	}
}

func TestBarometerTable(t *testing.T) {
	tbl := BarometerTable(DefaultBarometerParams())
	if tbl.NumRows() != 120 || tbl.NumCols() != 2 {
		t.Fatalf("shape = %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.At(0, 0).I != 1 {
		t.Error("months must start at 1")
	}
}

func TestEmploymentTable(t *testing.T) {
	tbl := EmploymentTable(1)
	if tbl.NumRows() != 10*5*2 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	vals, err := tbl.DistinctStrings("canton")
	if err != nil || len(vals) != 5 {
		t.Errorf("cantons = %v, %v", vals, err)
	}
}

func TestNewSwissDomain(t *testing.T) {
	d := NewSwissDomain(1)
	if d.Catalog.Len() != 3 {
		t.Errorf("catalog len = %d", d.Catalog.Len())
	}
	if _, err := d.DB.Get("barometer"); err != nil {
		t.Error(err)
	}
	// KG inference ran: Barometer lifted to swiss:Dataset.
	if len(d.KG.Match("swiss:Barometer", "rdf:type", "swiss:Dataset")) != 1 {
		t.Error("KG inference missing")
	}
	// Vocabulary covers the Figure 1 opening phrase.
	if got := d.Vocab.Canonicals("working force"); len(got) != 2 {
		t.Errorf("canonicals = %v", got)
	}
	// Figure 1 discovery: the opening question surfaces both labour
	// datasets.
	recs := d.Catalog.Search(d.Vocab.Expand(Figure1Turns()[0]), 5, d.Now)
	ids := map[string]bool{}
	for _, r := range recs {
		ids[r.Dataset.ID] = true
	}
	if !ids["barometer"] || !ids["employment"] {
		t.Errorf("discovery ids = %v", ids)
	}
}

func TestFigure1Turns(t *testing.T) {
	turns := Figure1Turns()
	if len(turns) != 4 || !strings.Contains(turns[3], "seasonality") {
		t.Errorf("turns = %v", turns)
	}
}

func TestSparseBarometerTable(t *testing.T) {
	p := DefaultBarometerParams()
	tbl := SparseBarometerTable(p, 5)
	if tbl.NumRows() != 5+120 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	// The sparse prefix alone is insufficient for seasonal analysis.
	rep := timeseries.CheckSufficiency(5, BarometerPeriod)
	if rep.OK {
		t.Error("sparse history should be insufficient")
	}
}

func TestGenNL2SQLGoldExecutes(t *testing.T) {
	w := GenNL2SQL(100, 0.5, 7)
	if len(w.Pairs) != 100 {
		t.Fatalf("pairs = %d", len(w.Pairs))
	}
	eng := sqldb.NewEngine(w.DB)
	for _, qa := range w.Pairs {
		if _, err := eng.Query(qa.GoldSQL); err != nil {
			t.Fatalf("gold %q does not execute: %v", qa.GoldSQL, err)
		}
	}
}

func TestGenNL2SQLQuestionsParse(t *testing.T) {
	w := GenNL2SQL(100, 0.5, 7)
	for _, qa := range w.Pairs {
		if _, err := nl2sql.ParseIntent(qa.Question); err != nil {
			t.Fatalf("question %q unparseable: %v", qa.Question, err)
		}
	}
}

func TestGenNL2SQLSynonymRate(t *testing.T) {
	wNone := GenNL2SQL(200, 0, 7)
	for _, qa := range wNone.Pairs {
		if qa.UsesSynonyms {
			t.Fatal("rate-0 workload contains synonyms")
		}
	}
	wAll := GenNL2SQL(200, 1, 7)
	syn := 0
	for _, qa := range wAll.Pairs {
		if qa.UsesSynonyms {
			syn++
		}
	}
	if syn < 150 {
		t.Errorf("rate-1 workload has only %d/200 synonym questions", syn)
	}
}

func TestGenNL2SQLDeterministic(t *testing.T) {
	a := GenNL2SQL(50, 0.5, 3)
	b := GenNL2SQL(50, 0.5, 3)
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestGenNL2SQLFabrications(t *testing.T) {
	w := GenNL2SQL(10, 0.5, 3)
	if len(w.Fabrications) == 0 {
		t.Fatal("no fabrications")
	}
	// Fabrications must NOT be valid identifiers.
	valid := map[string]bool{}
	for _, tbl := range w.DB.Tables() {
		valid[tbl.Name] = true
		for _, c := range tbl.Schema() {
			valid[c.Name] = true
		}
	}
	for _, f := range w.Fabrications {
		if valid[f] {
			t.Errorf("fabrication %q is a real identifier", f)
		}
	}
}

func TestGenVectors(t *testing.T) {
	p := VectorParams{N: 100, Queries: 10, Dim: 8, Clusters: 4, Spread: 1, Scale: 5, Seed: 2}
	data, queries := GenVectors(p)
	if len(data) != 100 || len(queries) != 10 {
		t.Fatalf("sizes = %d %d", len(data), len(queries))
	}
	if len(data[0]) != 8 {
		t.Errorf("dim = %d", len(data[0]))
	}
	// Deterministic.
	d2, _ := GenVectors(p)
	for i := range data {
		for j := range data[i] {
			if data[i][j] != d2[i][j] {
				t.Fatal("vectors not deterministic")
			}
		}
	}
}

func TestGenDiscovery(t *testing.T) {
	w := GenDiscovery(60, 7)
	if len(w.Queries) != 60 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	if w.Catalog.Len() != 6 {
		t.Errorf("catalog len = %d", w.Catalog.Len())
	}
	var mismatched int
	for _, q := range w.Queries {
		if _, err := w.Catalog.Get(q.Target); err != nil {
			t.Fatalf("target %q not in catalog", q.Target)
		}
		if q.Mismatch {
			mismatched++
		}
	}
	if mismatched == 0 || mismatched == len(w.Queries) {
		t.Errorf("mismatch count = %d, want a mix", mismatched)
	}
	// Deterministic.
	w2 := GenDiscovery(60, 7)
	for i := range w.Queries {
		if w.Queries[i] != w2.Queries[i] {
			t.Fatal("discovery workload not deterministic")
		}
	}
}

func TestGenBiasLogs(t *testing.T) {
	logs := GenBiasLogs(2, 10, 3)
	if len(logs.Planted) != 2 || len(logs.GroupTerms) != 6 {
		t.Fatalf("planted=%v groups=%v", logs.Planted, logs.GroupTerms)
	}
	if len(logs.Corpus) != 6*10*2 {
		t.Errorf("corpus = %d docs", len(logs.Corpus))
	}
	// Oversized biased count is clamped.
	all := GenBiasLogs(99, 5, 3)
	if len(all.Planted) != 6 {
		t.Errorf("clamped planted = %d", len(all.Planted))
	}
}
