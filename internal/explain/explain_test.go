package explain

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"

	"github.com/reliable-cda/cda/internal/provenance"
	"github.com/reliable-cda/cda/internal/storage"
)

func chainGraph(t *testing.T) (*provenance.Graph, string) {
	t.Helper()
	g := provenance.NewGraph()
	src := g.AddNode(provenance.Node{Kind: provenance.KindSource, Label: "barometer", Meta: map[string]string{"uri": "https://arbeit.swiss/barometer"}})
	q := g.AddNode(provenance.Node{Kind: provenance.KindQuery, Label: "load", Meta: map[string]string{"query": "SELECT value FROM barometer"}})
	comp := g.AddNode(provenance.Node{Kind: provenance.KindComputation, Label: "seasonal decomposition", Meta: map[string]string{"code": "timeseries.Decompose(xs, 6)"}})
	ans := g.AddNode(provenance.Node{Kind: provenance.KindAnswer, Label: "period 6, confidence 90%"})
	for _, e := range [][2]string{{q, src}, {comp, q}, {ans, comp}} {
		if err := g.DerivedFrom(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g, ans
}

func TestFromProvenance(t *testing.T) {
	g, ans := chainGraph(t)
	ex, err := FromProvenance(g, ans)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "period 6") || !strings.Contains(ex.Summary, "seasonal decomposition") {
		t.Errorf("summary = %q", ex.Summary)
	}
	if !strings.Contains(ex.Code, "Decompose") || !strings.Contains(ex.Code, "SELECT value") {
		t.Errorf("code = %q", ex.Code)
	}
	if len(ex.Sources) != 1 || !strings.Contains(ex.Sources[0], "arbeit.swiss") {
		t.Errorf("sources = %v", ex.Sources)
	}
}

func TestFromProvenanceUnknownNode(t *testing.T) {
	g, _ := chainGraph(t)
	if _, err := FromProvenance(g, "missing"); err == nil {
		t.Error("unknown node must error")
	}
}

func TestConsistencyOfEquivalentOutcomes(t *testing.T) {
	g1, a1 := chainGraph(t)
	g2, a2 := chainGraph(t)
	e1, err := FromProvenance(g1, a1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := FromProvenance(g2, a2)
	if err != nil {
		t.Fatal(err)
	}
	if !e1.Equal(e2) {
		t.Errorf("equivalent outcomes explained differently:\n%+v\n%+v", e1, e2)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := Explanation{Summary: "s", Code: "c", Sources: []string{"x"}}
	if !a.Equal(a) {
		t.Error("self-equality failed")
	}
	b := a
	b.Summary = "other"
	if a.Equal(b) {
		t.Error("summary diff missed")
	}
	c := a
	c.Sources = []string{"y"}
	if a.Equal(c) {
		t.Error("sources diff missed")
	}
	d := a
	d.Caveats = []string{"careful"}
	if a.Equal(d) {
		t.Error("caveats diff missed")
	}
}

func TestRenderVerbosityLevels(t *testing.T) {
	ex := Explanation{
		Summary: "The answer was derived.",
		Code:    "SELECT 1",
		Sources: []string{"src"},
		Caveats: []string{"only last 10 years used"},
	}
	full := ex.Render(1.0)
	mid := ex.Render(0.75)
	terse := ex.Render(0.5)
	expert := ex.Render(0.4)
	if !strings.Contains(full, "only last 10 years") || !strings.Contains(full, "SELECT 1") {
		t.Errorf("full = %q", full)
	}
	if !strings.Contains(mid, "only last 10 years") {
		t.Errorf("mid = %q", mid)
	}
	if strings.Contains(terse, "only last 10 years") || !strings.Contains(terse, "SELECT 1") {
		t.Errorf("terse = %q", terse)
	}
	if strings.Contains(expert, "SELECT 1") {
		t.Errorf("expert = %q", expert)
	}
	// Sources always present, at every verbosity.
	for _, r := range []string{full, mid, terse, expert} {
		if !strings.Contains(r, "Sources: src") {
			t.Errorf("sources dropped: %q", r)
		}
	}
}

func TestTruncate(t *testing.T) {
	ex := Explanation{Summary: strings.Repeat("a", 100), Sources: []string{"s"}}
	cut := ex.Truncate(10)
	if utf8.RuneCountInString(cut.Summary) != 10 {
		t.Errorf("summary len = %d", utf8.RuneCountInString(cut.Summary))
	}
	if !strings.HasSuffix(cut.Summary, "…") {
		t.Errorf("missing ellipsis: %q", cut.Summary)
	}
	if len(cut.Sources) != 1 {
		t.Error("truncate dropped sources")
	}
	// No-op when under budget.
	same := ex.Truncate(1000)
	if same.Summary != ex.Summary {
		t.Error("under-budget truncate modified summary")
	}
}

func TestSummaryMultipleQueriesPlural(t *testing.T) {
	g := provenance.NewGraph()
	src := g.AddNode(provenance.Node{Kind: provenance.KindSource, Label: "s"})
	q1 := g.AddNode(provenance.Node{Kind: provenance.KindQuery, Label: "q1", Meta: map[string]string{"query": "SELECT 1"}})
	q2 := g.AddNode(provenance.Node{Kind: provenance.KindQuery, Label: "q2", Meta: map[string]string{"query": "SELECT 2"}})
	ans := g.AddNode(provenance.Node{Kind: provenance.KindAnswer, Label: "a"})
	for _, e := range [][2]string{{q1, src}, {q2, src}, {ans, q1}, {ans, q2}} {
		if err := g.DerivedFrom(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ex, err := FromProvenance(g, ans)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "2 queries") {
		t.Errorf("summary = %q", ex.Summary)
	}
}

func TestDescribeTable(t *testing.T) {
	tbl := storage.NewTable("employment", storage.Schema{
		{Name: "canton", Kind: storage.KindString},
		{Name: "rate", Kind: storage.KindFloat},
	})
	tbl.Description = "employment statistics"
	tbl.MustAppendRow(storage.Str("Zurich"), storage.Float(79.5))
	tbl.MustAppendRow(storage.Str("Bern"), storage.Float(75.25))
	tbl.MustAppendRow(storage.Str("Zurich"), storage.Null())
	s := DescribeTable(tbl)
	for _, want := range []string{
		"employment: 3 rows × 2 columns",
		"employment statistics",
		"canton (TEXT): 2 distinct",
		"Zurich (2)",
		"rate (FLOAT)",
		"range 75.25–79.5",
		"1 missing",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	// Deterministic.
	if s != DescribeTable(tbl) {
		t.Error("summary not deterministic")
	}
}

func TestTrimNum(t *testing.T) {
	cases := map[float64]string{79.5: "79.5", 100: "100", 0.25: "0.25"}
	for in, want := range cases {
		if got := trimNum(in); got != want {
			t.Errorf("trimNum(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 60)
	if s != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp = %q", s)
	}
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty = %q", got)
	}
	// Constant series renders the lowest block everywhere.
	if got := Sparkline([]float64{5, 5, 5}, 10); got != "▁▁▁" {
		t.Errorf("constant = %q", got)
	}
	// NaN becomes a space.
	if got := Sparkline([]float64{math.NaN(), 1, 2}, 10); []rune(got)[0] != ' ' {
		t.Errorf("nan = %q", got)
	}
	// Downsampling caps the width.
	long := make([]float64, 500)
	for i := range long {
		long[i] = float64(i % 10)
	}
	if got := Sparkline(long, 40); len([]rune(got)) != 40 {
		t.Errorf("downsampled width = %d", len([]rune(got)))
	}
	// All-NaN renders spaces.
	if got := Sparkline([]float64{math.NaN(), math.NaN()}, 10); got != "  " {
		t.Errorf("all-nan = %q", got)
	}
}
