// Package explain assembles user-facing explanations (P3) from
// provenance graphs and analysis metadata: a concise summary, the
// code/query that produced the result, and the cited sources.
//
// Explanations are built deterministically from their inputs, which
// yields the paper's consistency requirement for free: equivalent
// outcomes produce byte-identical explanations (verified by tests),
// and there can be no contradictory explanations for one outcome.
package explain

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/reliable-cda/cda/internal/provenance"
	"github.com/reliable-cda/cda/internal/storage"
)

// Explanation is the annotation attached to every CDA answer.
type Explanation struct {
	// Summary is the one-paragraph NL account of how the answer was
	// produced.
	Summary string
	// Code is the executable artifact behind the answer (SQL text or
	// analysis call), satisfying "with the code that produced them".
	Code string
	// Sources are the citable origins (URIs, dataset names).
	Sources []string
	// Caveats list soundness qualifiers ("computed only where enough
	// data was present").
	Caveats []string
}

// Equal reports whether two explanations are identical — the
// consistency check between explanations of equivalent outcomes.
func (e Explanation) Equal(o Explanation) bool {
	if e.Summary != o.Summary || e.Code != o.Code {
		return false
	}
	if len(e.Sources) != len(o.Sources) || len(e.Caveats) != len(o.Caveats) {
		return false
	}
	for i := range e.Sources {
		if e.Sources[i] != o.Sources[i] {
			return false
		}
	}
	for i := range e.Caveats {
		if e.Caveats[i] != o.Caveats[i] {
			return false
		}
	}
	return true
}

// FromProvenance derives an explanation for a node of the provenance
// graph: the summary narrates the derivation chain, Code carries the
// closest computation's query/code, and Sources collect source-node
// labels and URIs (sorted, deduplicated).
func FromProvenance(g *provenance.Graph, answerID string) (Explanation, error) {
	var ex Explanation
	node, ok := g.Node(answerID)
	if !ok {
		return ex, fmt.Errorf("explain: unknown provenance node %q", answerID)
	}
	ancestors, err := g.WhereFrom(answerID)
	if err != nil {
		return ex, err
	}
	var comps, queries []provenance.Node
	srcSet := map[string]struct{}{}
	for _, a := range ancestors {
		switch a.Kind {
		case provenance.KindComputation:
			comps = append(comps, a)
		case provenance.KindQuery:
			queries = append(queries, a)
		case provenance.KindSource:
			label := a.Label
			if uri := a.Meta["uri"]; uri != "" {
				label += " (" + uri + ")"
			}
			srcSet[label] = struct{}{}
		}
	}
	for s := range srcSet {
		ex.Sources = append(ex.Sources, s)
	}
	sort.Strings(ex.Sources)

	var codes []string
	for _, c := range comps {
		if code := c.Meta["code"]; code != "" {
			codes = append(codes, code)
		}
	}
	for _, q := range queries {
		if code := q.Meta["query"]; code != "" {
			codes = append(codes, code)
		}
	}
	sort.Strings(codes)
	ex.Code = strings.Join(codes, "\n")

	var sb strings.Builder
	fmt.Fprintf(&sb, "The answer %q was derived", node.Label)
	if len(comps) > 0 {
		names := nodeLabels(comps)
		fmt.Fprintf(&sb, " by %s", strings.Join(names, ", "))
	}
	if len(queries) > 0 {
		fmt.Fprintf(&sb, " over %d quer%s", len(queries), plural(len(queries), "y", "ies"))
	}
	if len(ex.Sources) > 0 {
		fmt.Fprintf(&sb, " from %s", strings.Join(ex.Sources, "; "))
	}
	sb.WriteString(".")
	ex.Summary = sb.String()
	return ex, nil
}

func nodeLabels(ns []provenance.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Label
	}
	sort.Strings(out)
	return out
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// Render serializes the explanation for display, scaled by the
// verbosity multiplier from the guidance layer's expertise profile:
// 1.0 shows everything; lower values drop caveat detail and then code
// while ALWAYS retaining the sources (losslessness of citation is
// non-negotiable).
func (e Explanation) Render(verbosity float64) string {
	var sb strings.Builder
	sb.WriteString(e.Summary)
	if verbosity >= 0.75 {
		for _, c := range e.Caveats {
			sb.WriteString("\nNote: " + c)
		}
	}
	if verbosity >= 0.5 && e.Code != "" {
		sb.WriteString("\nCode:\n" + e.Code)
	}
	if len(e.Sources) > 0 {
		sb.WriteString("\nSources: " + strings.Join(e.Sources, "; "))
	}
	return sb.String()
}

// sparkRunes are the eight block characters of a text sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a compact unicode chart — the textual
// stand-in for Figure 1's "here is the plot". NaN values render as a
// space. Series longer than maxWidth are downsampled by bucket means.
func Sparkline(values []float64, maxWidth int) string {
	if len(values) == 0 {
		return ""
	}
	if maxWidth < 1 {
		maxWidth = 60
	}
	// Downsample to maxWidth buckets.
	if len(values) > maxWidth {
		bucketed := make([]float64, maxWidth)
		for b := 0; b < maxWidth; b++ {
			lo := b * len(values) / maxWidth
			hi := (b + 1) * len(values) / maxWidth
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			n := 0
			for _, v := range values[lo:hi] {
				if !math.IsNaN(v) {
					sum += v
					n++
				}
			}
			if n == 0 {
				bucketed[b] = math.NaN()
			} else {
				bucketed[b] = sum / float64(n)
			}
		}
		values = bucketed
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	span := hi - lo
	var sb strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			sb.WriteRune(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// DescribeTable produces the grounded data-source summary the NL
// model layer owes the user ("summaries of data sources"): every
// number in the text is computed from the data itself, so the summary
// cannot hallucinate. The output is deterministic.
func DescribeTable(t *storage.Table) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d rows × %d columns.", t.Name, t.NumRows(), t.NumCols())
	if t.Description != "" {
		sb.WriteString(" " + t.Description + ".")
	}
	for _, st := range storage.Profile(t) {
		fmt.Fprintf(&sb, "\n- %s (%s): %d distinct", st.Name, st.Kind, st.Distinct)
		if st.Nulls > 0 {
			fmt.Fprintf(&sb, ", %d missing", st.Nulls)
		}
		if st.HasNumeric {
			fmt.Fprintf(&sb, "; range %s–%s, mean %s",
				trimNum(st.Min), trimNum(st.Max), trimNum(st.Mean))
		} else if len(st.TopValues) > 0 && st.Distinct <= 20 {
			parts := make([]string, len(st.TopValues))
			for i, vc := range st.TopValues {
				parts[i] = fmt.Sprintf("%s (%d)", vc.Value, vc.Count)
			}
			fmt.Fprintf(&sb, "; most frequent: %s", strings.Join(parts, ", "))
		}
	}
	return sb.String()
}

func trimNum(f float64) string {
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Truncate enforces a conciseness budget (max runes) on the rendered
// summary without ever dropping the sources line: the summary is cut
// with an ellipsis instead.
func (e Explanation) Truncate(maxRunes int) Explanation {
	out := e
	runes := []rune(e.Summary)
	if len(runes) > maxRunes {
		if maxRunes < 1 {
			maxRunes = 1
		}
		out.Summary = string(runes[:maxRunes-1]) + "…"
	}
	return out
}
