// Package kg implements the knowledge-graph substrate the paper's P2
// (Grounding) requires: an in-memory triple store with pattern
// queries, basic-graph-pattern (BGP) joins with variables, and
// RDFS-lite forward-chaining inference (subClassOf, subPropertyOf,
// domain, range).
//
// Every triple carries a Source so answers grounded in the KG can
// cite where a fact came from (P4 Soundness by provenance); inferred
// triples are stamped with the rule that produced them.
package kg

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Well-known predicates (short-form CURIEs; the store does not expand
// namespaces).
const (
	PredType          = "rdf:type"
	PredSubClassOf    = "rdfs:subClassOf"
	PredSubPropertyOf = "rdfs:subPropertyOf"
	PredDomain        = "rdfs:domain"
	PredRange         = "rdfs:range"
	PredLabel         = "rdfs:label"
	PredComment       = "rdfs:comment"
	PredSynonym       = "skos:altLabel"
)

// Triple is one (subject, predicate, object) fact with provenance.
type Triple struct {
	S, P, O string
	// Source identifies where the fact came from: a dataset name, a
	// document, or "inferred:<rule>" for derived triples.
	Source string
}

// Store is a triple store with SPO/POS/OSP hash indexes. Safe for
// concurrent use.
type Store struct {
	mu      sync.RWMutex
	triples []Triple
	// present dedupes on (s,p,o); the first Source wins.
	present map[[3]string]struct{}
	bySP    map[[2]string][]int
	byP     map[string][]int
	byPO    map[[2]string][]int
	byS     map[string][]int
	byO     map[string][]int
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		present: make(map[[3]string]struct{}),
		bySP:    make(map[[2]string][]int),
		byP:     make(map[string][]int),
		byPO:    make(map[[2]string][]int),
		byS:     make(map[string][]int),
		byO:     make(map[string][]int),
	}
}

// Add inserts a triple; duplicates (same S,P,O) are ignored. Returns
// true when the triple was new.
func (st *Store) Add(t Triple) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.addLocked(t)
}

func (st *Store) addLocked(t Triple) bool {
	key := [3]string{t.S, t.P, t.O}
	if _, dup := st.present[key]; dup {
		return false
	}
	st.present[key] = struct{}{}
	i := len(st.triples)
	st.triples = append(st.triples, t)
	st.bySP[[2]string{t.S, t.P}] = append(st.bySP[[2]string{t.S, t.P}], i)
	st.byP[t.P] = append(st.byP[t.P], i)
	st.byPO[[2]string{t.P, t.O}] = append(st.byPO[[2]string{t.P, t.O}], i)
	st.byS[t.S] = append(st.byS[t.S], i)
	st.byO[t.O] = append(st.byO[t.O], i)
	return true
}

// Len returns the number of stored triples (including inferred ones).
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.triples)
}

// Match returns all triples matching the pattern; empty strings are
// wildcards.
func (st *Store) Match(s, p, o string) []Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var idxs []int
	switch {
	case s != "" && p != "":
		idxs = st.bySP[[2]string{s, p}]
	case p != "" && o != "":
		idxs = st.byPO[[2]string{p, o}]
	case s != "":
		idxs = st.byS[s]
	case o != "":
		idxs = st.byO[o]
	case p != "":
		idxs = st.byP[p]
	default:
		out := make([]Triple, len(st.triples))
		copy(out, st.triples)
		return out
	}
	var out []Triple
	for _, i := range idxs {
		t := st.triples[i]
		if (s == "" || t.S == s) && (p == "" || t.P == p) && (o == "" || t.O == o) {
			out = append(out, t)
		}
	}
	return out
}

// IsVar reports whether a BGP term is a variable (leading '?').
func IsVar(term string) bool { return strings.HasPrefix(term, "?") }

// Pattern is one BGP triple pattern; terms starting with '?' are
// variables, everything else is a constant.
type Pattern struct {
	S, P, O string
}

// Binding maps variable names (with '?') to constants.
type Binding map[string]string

// Query evaluates a conjunctive BGP with backtracking, returning all
// variable bindings. Patterns are evaluated in the given order;
// callers should put selective patterns first for speed.
func (st *Store) Query(patterns []Pattern) []Binding {
	var results []Binding
	st.bgp(patterns, Binding{}, &results)
	return results
}

func (st *Store) bgp(patterns []Pattern, bound Binding, out *[]Binding) {
	if len(patterns) == 0 {
		b := make(Binding, len(bound))
		for k, v := range bound {
			b[k] = v
		}
		*out = append(*out, b)
		return
	}
	p := patterns[0]
	s, sv := resolveTerm(p.S, bound)
	pr, pv := resolveTerm(p.P, bound)
	o, ov := resolveTerm(p.O, bound)
	for _, t := range st.Match(s, pr, o) {
		var assigned []string
		ok := true
		bind := func(varName, val string) {
			if cur, has := bound[varName]; has {
				if cur != val {
					ok = false
				}
				return
			}
			bound[varName] = val
			assigned = append(assigned, varName)
		}
		if sv != "" {
			bind(sv, t.S)
		}
		if ok && pv != "" {
			bind(pv, t.P)
		}
		if ok && ov != "" {
			bind(ov, t.O)
		}
		if ok {
			st.bgp(patterns[1:], bound, out)
		}
		for _, v := range assigned {
			delete(bound, v)
		}
	}
}

// resolveTerm returns (constant, "") for constants and bound
// variables, or ("", varName) for unbound variables.
func resolveTerm(term string, bound Binding) (constant, varName string) {
	if !IsVar(term) {
		return term, ""
	}
	if v, ok := bound[term]; ok {
		return v, ""
	}
	return "", term
}

// Infer materializes the RDFS-lite closure:
//
//	(C subClassOf D), (D subClassOf E)   ⇒ (C subClassOf E)
//	(x type C), (C subClassOf D)         ⇒ (x type D)
//	(p subPropertyOf q), (x p y)         ⇒ (x q y)
//	(p domain C), (x p y)                ⇒ (x type C)
//	(p range C), (x p y)                 ⇒ (y type C)
//
// It iterates to fixpoint and returns the number of new triples.
func (st *Store) Infer() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	added := 0
	for {
		var fresh []Triple
		// Rule application reads the current snapshot.
		snapshot := st.triples
		sub := map[string][]string{}  // class -> superclasses
		subP := map[string][]string{} // prop -> superprops
		dom := map[string][]string{}  // prop -> domain classes
		rng := map[string][]string{}  // prop -> range classes
		for _, t := range snapshot {
			switch t.P {
			case PredSubClassOf:
				sub[t.S] = append(sub[t.S], t.O)
			case PredSubPropertyOf:
				subP[t.S] = append(subP[t.S], t.O)
			case PredDomain:
				dom[t.S] = append(dom[t.S], t.O)
			case PredRange:
				rng[t.S] = append(rng[t.S], t.O)
			}
		}
		for _, t := range snapshot {
			switch t.P {
			case PredSubClassOf:
				for _, sup := range sub[t.O] {
					fresh = append(fresh, Triple{S: t.S, P: PredSubClassOf, O: sup, Source: "inferred:subClassOf-transitive"})
				}
			case PredType:
				for _, sup := range sub[t.O] {
					fresh = append(fresh, Triple{S: t.S, P: PredType, O: sup, Source: "inferred:type-subClassOf"})
				}
			}
			for _, q := range subP[t.P] {
				fresh = append(fresh, Triple{S: t.S, P: q, O: t.O, Source: "inferred:subPropertyOf"})
			}
			for _, c := range dom[t.P] {
				fresh = append(fresh, Triple{S: t.S, P: PredType, O: c, Source: "inferred:domain"})
			}
			for _, c := range rng[t.P] {
				fresh = append(fresh, Triple{S: t.O, P: PredType, O: c, Source: "inferred:range"})
			}
		}
		n := 0
		for _, t := range fresh {
			if st.addLocked(t) {
				n++
			}
		}
		added += n
		if n == 0 {
			return added
		}
	}
}

// Labels returns all rdfs:label and skos:altLabel values of an entity.
func (st *Store) Labels(entity string) []string {
	var out []string
	for _, t := range st.Match(entity, PredLabel, "") {
		out = append(out, t.O)
	}
	for _, t := range st.Match(entity, PredSynonym, "") {
		out = append(out, t.O)
	}
	sort.Strings(out)
	return out
}

// EntitiesByLabel returns entities whose rdfs:label or skos:altLabel
// equals the text (case-insensitive). Used by entity linking.
func (st *Store) EntitiesByLabel(label string) []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	want := strings.ToLower(label)
	set := map[string]struct{}{}
	for _, t := range st.triples {
		if (t.P == PredLabel || t.P == PredSynonym) && strings.ToLower(t.O) == want {
			set[t.S] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Describe returns a human-readable summary of an entity: its label,
// comment, types, and outgoing facts — the "concise summary of the
// dataset coupled with the source" behaviour in Figure 1.
func (st *Store) Describe(entity string) string {
	var sb strings.Builder
	labels := st.Match(entity, PredLabel, "")
	if len(labels) > 0 {
		sb.WriteString(labels[0].O)
	} else {
		sb.WriteString(entity)
	}
	for _, t := range st.Match(entity, PredComment, "") {
		sb.WriteString(": " + t.O)
	}
	types := st.Match(entity, PredType, "")
	if len(types) > 0 {
		names := make([]string, len(types))
		for i, t := range types {
			names[i] = t.O
		}
		sort.Strings(names)
		sb.WriteString(fmt.Sprintf(" (a %s)", strings.Join(names, ", ")))
	}
	return sb.String()
}

// Sources returns the distinct provenance sources supporting facts
// about the entity (as subject).
func (st *Store) Sources(entity string) []string {
	set := map[string]struct{}{}
	for _, t := range st.Match(entity, "", "") {
		if t.Source != "" {
			set[t.Source] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
