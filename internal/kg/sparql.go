package kg

import (
	"fmt"
	"sort"
	"strings"
)

// SelectQuery is a parsed SPARQL-lite SELECT query.
type SelectQuery struct {
	Vars     []string // projected variables, with '?' prefix; nil = SELECT *
	Star     bool
	Distinct bool
	Patterns []Pattern
}

// ParseSPARQL parses the SPARQL subset
//
//	SELECT [DISTINCT] (?v ... | *) WHERE { s p o . s p o ... }
//
// Terms are variables (?x), quoted literals ("text", object position
// only), or plain IRIs/CURIEs (ex:Barometer, rdf:type). The keyword
// `a` abbreviates rdf:type. Dots separate patterns; a trailing dot is
// allowed.
func ParseSPARQL(query string) (*SelectQuery, error) {
	toks, err := sparqlLex(query)
	if err != nil {
		return nil, err
	}
	p := &sparqlParser{toks: toks}
	q := &SelectQuery{}
	if !p.acceptKeyword("SELECT") {
		return nil, fmt.Errorf("kg: expected SELECT")
	}
	q.Distinct = p.acceptKeyword("DISTINCT")
	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("kg: unexpected end of query in projection")
		}
		if t == "*" {
			if len(q.Vars) > 0 {
				return nil, fmt.Errorf("kg: cannot mix * with variables")
			}
			p.next()
			q.Star = true
			break
		}
		if strings.EqualFold(t, "WHERE") {
			break
		}
		if !strings.HasPrefix(t, "?") {
			return nil, fmt.Errorf("kg: expected variable or * in projection, got %q", t)
		}
		q.Vars = append(q.Vars, p.next())
	}
	if !q.Star && len(q.Vars) == 0 {
		return nil, fmt.Errorf("kg: empty projection")
	}
	if !p.acceptKeyword("WHERE") {
		return nil, fmt.Errorf("kg: expected WHERE")
	}
	if !p.accept("{") {
		return nil, fmt.Errorf("kg: expected '{'")
	}
	for {
		if p.accept("}") {
			break
		}
		var terms [3]string
		for i := 0; i < 3; i++ {
			t, ok := p.peek()
			if !ok || t == "}" || t == "." {
				return nil, fmt.Errorf("kg: incomplete triple pattern")
			}
			term := p.next()
			if term == "a" && i == 1 {
				term = PredType
			}
			if i != 2 && strings.HasPrefix(term, "\x00lit:") {
				return nil, fmt.Errorf("kg: literals are only allowed in object position")
			}
			terms[i] = strings.TrimPrefix(term, "\x00lit:")
		}
		q.Patterns = append(q.Patterns, Pattern{S: terms[0], P: terms[1], O: terms[2]})
		p.accept(".") // optional separator / trailing dot
	}
	if t, ok := p.peek(); ok {
		return nil, fmt.Errorf("kg: trailing input %q", t)
	}
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("kg: empty WHERE clause")
	}
	// Every projected variable must occur in some pattern.
	if !q.Star {
		used := map[string]bool{}
		for _, pat := range q.Patterns {
			for _, term := range []string{pat.S, pat.P, pat.O} {
				if IsVar(term) {
					used[term] = true
				}
			}
		}
		for _, v := range q.Vars {
			if !used[v] {
				return nil, fmt.Errorf("kg: projected variable %s not used in WHERE", v)
			}
		}
	}
	return q, nil
}

// sparqlLex splits the query into tokens; quoted literals become one
// token marked with a private prefix so the parser can distinguish
// them from IRIs.
func sparqlLex(query string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(query) {
		c := query[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < len(query) {
				if query[j] == '\\' && j+1 < len(query) {
					sb.WriteByte(query[j+1])
					j += 2
					continue
				}
				if query[j] == '"' {
					closed = true
					j++
					break
				}
				sb.WriteByte(query[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("kg: unterminated literal")
			}
			toks = append(toks, "\x00lit:"+sb.String())
			i = j
		case c == '{' || c == '}' || c == '.':
			toks = append(toks, string(c))
			i++
		default:
			j := i
			for j < len(query) && !strings.ContainsRune(" \t\n\r{}.\"", rune(query[j])) {
				j++
			}
			toks = append(toks, query[i:j])
			i = j
		}
	}
	return toks, nil
}

type sparqlParser struct {
	toks []string
	pos  int
}

func (p *sparqlParser) peek() (string, bool) {
	if p.pos >= len(p.toks) {
		return "", false
	}
	return p.toks[p.pos], true
}

func (p *sparqlParser) next() string {
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *sparqlParser) accept(tok string) bool {
	if t, ok := p.peek(); ok && t == tok {
		p.pos++
		return true
	}
	return false
}

func (p *sparqlParser) acceptKeyword(kw string) bool {
	if t, ok := p.peek(); ok && strings.EqualFold(t, kw) {
		p.pos++
		return true
	}
	return false
}

// Select parses and evaluates a SPARQL-lite query, returning one row
// per solution with values in projection order. SELECT * projects all
// variables in first-appearance order.
func (st *Store) Select(query string) (vars []string, rows [][]string, err error) {
	q, err := ParseSPARQL(query)
	if err != nil {
		return nil, nil, err
	}
	vars = q.Vars
	if q.Star {
		seen := map[string]bool{}
		for _, pat := range q.Patterns {
			for _, term := range []string{pat.S, pat.P, pat.O} {
				if IsVar(term) && !seen[term] {
					seen[term] = true
					vars = append(vars, term)
				}
			}
		}
	}
	bindings := st.Query(q.Patterns)
	dedup := map[string]bool{}
	for _, b := range bindings {
		row := make([]string, len(vars))
		for i, v := range vars {
			row[i] = b[v]
		}
		if q.Distinct {
			key := strings.Join(row, "\x1f")
			if dedup[key] {
				continue
			}
			dedup[key] = true
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
	return vars, rows, nil
}
