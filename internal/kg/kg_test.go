package kg

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildStore() *Store {
	st := NewStore()
	st.Add(Triple{S: "ex:Barometer", P: PredType, O: "ex:Indicator", Source: "catalog"})
	st.Add(Triple{S: "ex:Indicator", P: PredSubClassOf, O: "ex:Dataset", Source: "ontology"})
	st.Add(Triple{S: "ex:Dataset", P: PredSubClassOf, O: "ex:Resource", Source: "ontology"})
	st.Add(Triple{S: "ex:Barometer", P: PredLabel, O: "Swiss Labour Market Barometer", Source: "catalog"})
	st.Add(Triple{S: "ex:Barometer", P: PredSynonym, O: "workforce barometer", Source: "catalog"})
	st.Add(Triple{S: "ex:Barometer", P: PredComment, O: "monthly leading indicator from 22 cantons", Source: "arbeit.swiss"})
	st.Add(Triple{S: "ex:measures", P: PredDomain, O: "ex:Indicator", Source: "ontology"})
	st.Add(Triple{S: "ex:measures", P: PredRange, O: "ex:Phenomenon", Source: "ontology"})
	st.Add(Triple{S: "ex:Barometer", P: "ex:measures", O: "ex:Employment", Source: "catalog"})
	st.Add(Triple{S: "ex:hasTopic", P: PredSubPropertyOf, O: "ex:about", Source: "ontology"})
	st.Add(Triple{S: "ex:Barometer", P: "ex:hasTopic", O: "ex:LabourMarket", Source: "catalog"})
	return st
}

func TestAddAndDedup(t *testing.T) {
	st := NewStore()
	tr := Triple{S: "a", P: "b", O: "c", Source: "s1"}
	if !st.Add(tr) {
		t.Error("first add must return true")
	}
	if st.Add(Triple{S: "a", P: "b", O: "c", Source: "s2"}) {
		t.Error("duplicate add must return false")
	}
	if st.Len() != 1 {
		t.Errorf("len = %d", st.Len())
	}
}

func TestMatchPatterns(t *testing.T) {
	st := buildStore()
	if got := st.Match("ex:Barometer", PredType, ""); len(got) != 1 || got[0].O != "ex:Indicator" {
		t.Errorf("S+P match = %v", got)
	}
	if got := st.Match("", PredType, "ex:Indicator"); len(got) != 1 {
		t.Errorf("P+O match = %v", got)
	}
	if got := st.Match("ex:Barometer", "", ""); len(got) != 6 {
		t.Errorf("S match = %d triples", len(got))
	}
	if got := st.Match("", "", "ex:Employment"); len(got) != 1 {
		t.Errorf("O match = %v", got)
	}
	if got := st.Match("", PredSubClassOf, ""); len(got) != 2 {
		t.Errorf("P match = %v", got)
	}
	if got := st.Match("", "", ""); len(got) != st.Len() {
		t.Errorf("full scan = %d", len(got))
	}
	if got := st.Match("nope", "", ""); len(got) != 0 {
		t.Errorf("missing subject = %v", got)
	}
}

func TestBGPQuery(t *testing.T) {
	st := buildStore()
	res := st.Query([]Pattern{
		{S: "?x", P: PredType, O: "ex:Indicator"},
		{S: "?x", P: PredLabel, O: "?label"},
	})
	if len(res) != 1 {
		t.Fatalf("bindings = %v", res)
	}
	if res[0]["?x"] != "ex:Barometer" || res[0]["?label"] != "Swiss Labour Market Barometer" {
		t.Errorf("binding = %v", res[0])
	}
}

func TestBGPQueryVariablePredicate(t *testing.T) {
	st := buildStore()
	res := st.Query([]Pattern{{S: "ex:Barometer", P: "?p", O: "ex:Employment"}})
	if len(res) != 1 || res[0]["?p"] != "ex:measures" {
		t.Errorf("bindings = %v", res)
	}
}

func TestBGPQueryJoinConsistency(t *testing.T) {
	st := buildStore()
	// ?x must bind consistently across patterns; nothing both an
	// Indicator and labeled "nonexistent".
	res := st.Query([]Pattern{
		{S: "?x", P: PredType, O: "ex:Indicator"},
		{S: "?x", P: PredLabel, O: "nonexistent"},
	})
	if len(res) != 0 {
		t.Errorf("bindings = %v", res)
	}
}

func TestBGPSameVariableTwice(t *testing.T) {
	st := NewStore()
	st.Add(Triple{S: "a", P: "knows", O: "a"})
	st.Add(Triple{S: "a", P: "knows", O: "b"})
	res := st.Query([]Pattern{{S: "?x", P: "knows", O: "?x"}})
	if len(res) != 1 || res[0]["?x"] != "a" {
		t.Errorf("self-loop bindings = %v", res)
	}
}

func TestBGPEmptyPatterns(t *testing.T) {
	st := buildStore()
	res := st.Query(nil)
	if len(res) != 1 || len(res[0]) != 0 {
		t.Errorf("empty BGP = %v", res)
	}
}

func TestInferSubclassTransitive(t *testing.T) {
	st := buildStore()
	added := st.Infer()
	if added == 0 {
		t.Fatal("no inference happened")
	}
	// Transitive subclass: Indicator ⊑ Resource.
	if got := st.Match("ex:Indicator", PredSubClassOf, "ex:Resource"); len(got) != 1 {
		t.Error("missing transitive subclass")
	} else if got[0].Source != "inferred:subClassOf-transitive" {
		t.Errorf("source = %q", got[0].Source)
	}
	// Type lifting: Barometer is a Dataset and a Resource.
	if len(st.Match("ex:Barometer", PredType, "ex:Dataset")) != 1 {
		t.Error("missing lifted type Dataset")
	}
	if len(st.Match("ex:Barometer", PredType, "ex:Resource")) != 1 {
		t.Error("missing lifted type Resource")
	}
}

func TestInferDomainRange(t *testing.T) {
	st := buildStore()
	st.Infer()
	// domain: Barometer gains type Indicator (already had); range:
	// Employment gains type Phenomenon.
	if len(st.Match("ex:Employment", PredType, "ex:Phenomenon")) != 1 {
		t.Error("missing range inference")
	}
}

func TestInferSubProperty(t *testing.T) {
	st := buildStore()
	st.Infer()
	if len(st.Match("ex:Barometer", "ex:about", "ex:LabourMarket")) != 1 {
		t.Error("missing subPropertyOf inference")
	}
}

func TestInferIdempotent(t *testing.T) {
	st := buildStore()
	st.Infer()
	if again := st.Infer(); again != 0 {
		t.Errorf("second Infer added %d triples", again)
	}
}

func TestLabelsAndLookup(t *testing.T) {
	st := buildStore()
	labels := st.Labels("ex:Barometer")
	if len(labels) != 2 {
		t.Errorf("labels = %v", labels)
	}
	ents := st.EntitiesByLabel("WORKFORCE BAROMETER")
	if len(ents) != 1 || ents[0] != "ex:Barometer" {
		t.Errorf("entities = %v", ents)
	}
	if got := st.EntitiesByLabel("unknown thing"); len(got) != 0 {
		t.Errorf("unknown label = %v", got)
	}
}

func TestDescribe(t *testing.T) {
	st := buildStore()
	d := st.Describe("ex:Barometer")
	if d == "" || d == "ex:Barometer" {
		t.Errorf("describe = %q", d)
	}
	for _, want := range []string{"Swiss Labour Market Barometer", "22 cantons", "ex:Indicator"} {
		if !strings.Contains(d, want) {
			t.Errorf("describe %q missing %q", d, want)
		}
	}
	if got := st.Describe("ex:Unknown"); got != "ex:Unknown" {
		t.Errorf("unknown describe = %q", got)
	}
}

func TestSources(t *testing.T) {
	st := buildStore()
	srcs := st.Sources("ex:Barometer")
	want := map[string]bool{"catalog": true, "arbeit.swiss": true}
	if len(srcs) != 2 {
		t.Fatalf("sources = %v", srcs)
	}
	for _, s := range srcs {
		if !want[s] {
			t.Errorf("unexpected source %q", s)
		}
	}
}

// Property: Match(s,p,o) with all constants returns at most one triple
// and is consistent with Add.
func TestMatchConsistencyProperty(t *testing.T) {
	f := func(s, p, o byte) bool {
		st := NewStore()
		tr := Triple{S: string('a' + s%3), P: string('p' + p%3), O: string('x' + o%3)}
		st.Add(tr)
		got := st.Match(tr.S, tr.P, tr.O)
		return len(got) == 1 && got[0].S == tr.S
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: inference never removes triples and is monotone.
func TestInferMonotoneProperty(t *testing.T) {
	st := buildStore()
	before := st.Len()
	st.Infer()
	if st.Len() < before {
		t.Error("inference removed triples")
	}
}
