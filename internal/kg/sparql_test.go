package kg

import "testing"

func TestParseSPARQLBasics(t *testing.T) {
	q, err := ParseSPARQL(`SELECT ?x ?label WHERE { ?x rdf:type ex:Indicator . ?x rdfs:label ?label }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vars) != 2 || q.Vars[0] != "?x" || q.Vars[1] != "?label" {
		t.Errorf("vars = %v", q.Vars)
	}
	if len(q.Patterns) != 2 || q.Patterns[0].P != "rdf:type" {
		t.Errorf("patterns = %v", q.Patterns)
	}
}

func TestParseSPARQLAKeyword(t *testing.T) {
	q, err := ParseSPARQL(`SELECT ?x WHERE { ?x a ex:Indicator }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].P != PredType {
		t.Errorf("a not expanded: %v", q.Patterns[0])
	}
}

func TestParseSPARQLLiteral(t *testing.T) {
	q, err := ParseSPARQL(`SELECT ?x WHERE { ?x rdfs:label "Swiss Labour Market Barometer" . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].O != "Swiss Labour Market Barometer" {
		t.Errorf("literal = %q", q.Patterns[0].O)
	}
}

func TestParseSPARQLEscapedLiteral(t *testing.T) {
	q, err := ParseSPARQL(`SELECT ?x WHERE { ?x rdfs:label "say \"hi\"" }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].O != `say "hi"` {
		t.Errorf("literal = %q", q.Patterns[0].O)
	}
}

func TestParseSPARQLErrors(t *testing.T) {
	bad := []string{
		``,
		`ASK { ?x ?p ?o }`,
		`SELECT WHERE { ?x ?p ?o }`,
		`SELECT ?x { ?x ?p ?o }`,
		`SELECT ?x WHERE ?x ?p ?o }`,
		`SELECT ?x WHERE { ?x ?p }`,
		`SELECT ?x WHERE { }`,
		`SELECT ?x WHERE { ?y ?p ?o }`,
		`SELECT ?x WHERE { ?x ?p ?o } trailing`,
		`SELECT ?x WHERE { "lit" ?p ?o }`,
		`SELECT ?x * WHERE { ?x ?p ?o }`,
		`SELECT ?x WHERE { ?x ?p "unterminated }`,
	}
	for _, q := range bad {
		if _, err := ParseSPARQL(q); err == nil {
			t.Errorf("ParseSPARQL(%q) should fail", q)
		}
	}
}

func TestSelectExecutes(t *testing.T) {
	st := buildStore()
	vars, rows, err := st.Select(`SELECT ?label WHERE { ?x rdf:type ex:Indicator . ?x rdfs:label ?label }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 1 || len(rows) != 1 || rows[0][0] != "Swiss Labour Market Barometer" {
		t.Errorf("vars=%v rows=%v", vars, rows)
	}
}

func TestSelectStar(t *testing.T) {
	st := buildStore()
	vars, rows, err := st.Select(`SELECT * WHERE { ?x ex:measures ?what }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 2 || vars[0] != "?x" || vars[1] != "?what" {
		t.Errorf("vars = %v", vars)
	}
	if len(rows) != 1 || rows[0][0] != "ex:Barometer" || rows[0][1] != "ex:Employment" {
		t.Errorf("rows = %v", rows)
	}
}

func TestSelectDistinct(t *testing.T) {
	st := NewStore()
	st.Add(Triple{S: "a", P: "p", O: "x"})
	st.Add(Triple{S: "b", P: "p", O: "x"})
	_, rows, err := st.Select(`SELECT DISTINCT ?o WHERE { ?s p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("distinct rows = %v", rows)
	}
	_, rows, _ = st.Select(`SELECT ?o WHERE { ?s p ?o }`)
	if len(rows) != 2 {
		t.Errorf("non-distinct rows = %v", rows)
	}
}

func TestSelectLiteralFilter(t *testing.T) {
	st := buildStore()
	_, rows, err := st.Select(`SELECT ?x WHERE { ?x rdfs:label "Swiss Labour Market Barometer" }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "ex:Barometer" {
		t.Errorf("rows = %v", rows)
	}
}

func TestSelectAfterInference(t *testing.T) {
	st := buildStore()
	st.Infer()
	_, rows, err := st.Select(`SELECT ?x WHERE { ?x a ex:Resource }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "ex:Barometer" {
		t.Errorf("inferred-type query rows = %v", rows)
	}
}

func TestSelectDeterministicOrder(t *testing.T) {
	st := buildStore()
	_, r1, _ := st.Select(`SELECT ?s WHERE { ?s ?p ?o }`)
	_, r2, _ := st.Select(`SELECT ?s WHERE { ?s ?p ?o }`)
	if len(r1) != len(r2) {
		t.Fatal("row count differs")
	}
	for i := range r1 {
		if r1[i][0] != r2[i][0] {
			t.Fatal("row order not deterministic")
		}
	}
}

// Property: the SPARQL parser never panics on arbitrary input.
func TestSPARQLNeverPanics(t *testing.T) {
	inputs := []string{
		"", "SELECT", "SELECT *", "SELECT * WHERE {", "SELECT ?x WHERE { ?x",
		"SELECT ?x WHERE { \"", "}{", "SELECT ?x WHERE { . . . }",
		"SELECT ?x WHERE { a a a } extra", "SELECT * WHERE { ?s ?p \"unclosed }",
	}
	for _, in := range inputs {
		func(q string) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", q, r)
				}
			}()
			_, _ = ParseSPARQL(q)
		}(in)
	}
}
