package kg_test

import (
	"fmt"

	"github.com/reliable-cda/cda/internal/kg"
)

func Example() {
	st := kg.NewStore()
	st.Add(kg.Triple{S: "ex:Barometer", P: kg.PredType, O: "ex:Indicator", Source: "catalog"})
	st.Add(kg.Triple{S: "ex:Indicator", P: kg.PredSubClassOf, O: "ex:Dataset", Source: "ontology"})
	st.Add(kg.Triple{S: "ex:Barometer", P: kg.PredLabel, O: "Labour Market Barometer", Source: "catalog"})
	st.Infer() // materialize the RDFS closure

	_, rows, err := st.Select(`SELECT ?label WHERE { ?x a ex:Dataset . ?x rdfs:label ?label }`)
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Println(r[0])
	}
	// Output:
	// Labour Market Barometer
}
