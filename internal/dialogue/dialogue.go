// Package dialogue implements the conversational data exploration
// layer's session machinery: turn history, intent classification,
// reference resolution against the conversation context ("I am
// interested in the barometer" → the dataset offered two turns ago),
// and pending-clarification tracking.
//
// The paper's Figure 1 dialogue drives the design: the same session
// object carries the user from an ambiguous overview question through
// a clarification, a dataset description, and an analysis request.
package dialogue

import (
	"strings"
	"time"

	"github.com/reliable-cda/cda/internal/textindex"
)

// Role identifies who produced a turn.
type Role int

// Turn roles.
const (
	RoleUser Role = iota
	RoleSystem
)

// String names the role.
func (r Role) String() string {
	if r == RoleUser {
		return "user"
	}
	return "system"
}

// ParseRole inverts Role.String. Unrecognized names parse as
// RoleSystem, matching String's default arm, so the round trip is
// total: ParseRole(r.String()) == r for every role.
func ParseRole(s string) Role {
	if s == "user" {
		return RoleUser
	}
	return RoleSystem
}

// Intent classifies what the user wants from a turn.
type Intent int

// Supported intents.
const (
	IntentUnknown Intent = iota
	// IntentDiscover: find relevant datasets ("overview of the
	// working force").
	IntentDiscover
	// IntentDescribe: explain a dataset or concept ("what is the
	// barometer?").
	IntentDescribe
	// IntentChoose: pick one of the offered options ("I am interested
	// in the barometer").
	IntentChoose
	// IntentAnalyze: run an analysis ("seasonality insights, trends").
	IntentAnalyze
	// IntentQuery: a structured-fact question routed to NL2SQL ("how
	// many ...", "what is the average ...").
	IntentQuery
	// IntentConfirm: a yes/no reply to a pending system question
	// ("yes", "no, I meant ...") — the ask-and-refine loop.
	IntentConfirm
	// IntentFollowUp: an elliptical refinement of the previous
	// question ("and in Bern?").
	IntentFollowUp
)

// String names the intent.
func (i Intent) String() string {
	switch i {
	case IntentDiscover:
		return "discover"
	case IntentDescribe:
		return "describe"
	case IntentChoose:
		return "choose"
	case IntentAnalyze:
		return "analyze"
	case IntentQuery:
		return "query"
	case IntentConfirm:
		return "confirm"
	case IntentFollowUp:
		return "followup"
	default:
		return "unknown"
	}
}

// ParseIntent inverts Intent.String so transcripts serialized by the
// session store's WAL (internal/sessionstore) recover the exact
// intent annotation they were committed with. Unrecognized names
// parse as IntentUnknown, matching String's default arm.
func ParseIntent(s string) Intent {
	switch s {
	case "discover":
		return IntentDiscover
	case "describe":
		return IntentDescribe
	case "choose":
		return IntentChoose
	case "analyze":
		return IntentAnalyze
	case "query":
		return IntentQuery
	case "confirm":
		return IntentConfirm
	case "followup":
		return IntentFollowUp
	default:
		return IntentUnknown
	}
}

// ClassifyIntent maps a user utterance to an intent with keyword
// rules. Order matters: structured-query patterns are checked first
// because they are the most specific.
func ClassifyIntent(text string) Intent {
	t := strings.ToLower(strings.TrimSpace(text))
	t = strings.TrimSuffix(t, "?")
	t = strings.TrimSuffix(t, ".")
	switch {
	case t == "yes" || t == "no" || hasPrefixAny(t, "yes,", "yes ", "no,", "no ",
		"correct", "exactly", "that's right", "that is right"):
		return IntentConfirm
	case hasPrefixAny(t, "how many", "what is the average", "what is the total",
		"what is the maximum", "what is the minimum", "list the"):
		return IntentQuery
	case hasPrefixAny(t, "and in ", "and for ", "and where ", "and the ",
		"what about ", "how about "):
		return IntentFollowUp
	case containsAny(t, "seasonality", "seasonal", "trend", "insight", "decompos", "forecast", "anomal"):
		return IntentAnalyze
	case hasPrefixAny(t, "what is", "what are", "describe", "tell me about", "explain"):
		return IntentDescribe
	case containsAny(t, "i am interested in", "i'm interested in", "i prefer", "the first one",
		"the second one", "show me the", "let's use", "go with"):
		return IntentChoose
	case containsAny(t, "overview", "find", "search", "which data", "what data", "datasets", "data about", "sources"):
		return IntentDiscover
	default:
		return IntentUnknown
	}
}

func hasPrefixAny(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// Turn is one utterance with its annotations.
type Turn struct {
	Role   Role
	Text   string
	Intent Intent // user turns only
	// Confidence is the system's reported confidence (system turns).
	Confidence float64
	At         time.Time
}

// Offer is an option the system put on the table (a dataset, an
// analysis), kept so later user turns can refer back to it.
type Offer struct {
	ID    string // e.g. dataset ID
	Label string // what was said to the user
}

// Clarification is a pending question the system asked.
type Clarification struct {
	Question string
	Options  []Offer
}

// Session is one conversation's mutable state.
type Session struct {
	Turns   []Turn
	Offers  []Offer // most recent offers, newest last
	Focus   string  // ID of the dataset currently under discussion
	Pending *Clarification
	// Memo is a blackboard for cross-turn state owned by the
	// orchestrator (e.g. the previous query frame for follow-ups, or
	// a candidate answer awaiting user confirmation).
	Memo map[string]any
}

// NewSession creates an empty session.
func NewSession() *Session { return &Session{Memo: map[string]any{}} }

// ClassifyTurn classifies a user utterance in the session's context
// WITHOUT mutating the session. A pending clarification biases
// classification toward IntentChoose when the utterance references an
// offer. The orchestrator classifies first, dispatches, and only
// commits the turn pair once the answer is final — so a cancelled or
// failed turn never leaves a partial transcript entry.
func (s *Session) ClassifyTurn(text string) Intent {
	intent := ClassifyIntent(text)
	// A pending clarification only reinterprets utterances that have
	// no clear intent of their own ("the barometer"); an explicit
	// question ("what is X?") keeps its intent.
	if intent == IntentUnknown && s.Pending != nil {
		if _, ok := s.ResolveOffer(text); ok {
			intent = IntentChoose
		}
	}
	return intent
}

// AddUserTurn appends a user turn, classifying its intent, and
// returns that intent.
func (s *Session) AddUserTurn(text string) Intent {
	intent := s.ClassifyTurn(text)
	s.Turns = append(s.Turns, Turn{Role: RoleUser, Text: text, Intent: intent})
	return intent
}

// AddSystemTurn appends a system turn with its confidence.
func (s *Session) AddSystemTurn(text string, confidence float64) {
	s.Turns = append(s.Turns, Turn{Role: RoleSystem, Text: text, Confidence: confidence})
}

// CommitTurn atomically appends a completed user/system turn pair
// with the intent the dispatch ran under (classified before any
// handler side effects shifted the pending-clarification bias).
func (s *Session) CommitTurn(userText string, intent Intent, systemText string, confidence float64) {
	s.Turns = append(s.Turns,
		Turn{Role: RoleUser, Text: userText, Intent: intent},
		Turn{Role: RoleSystem, Text: systemText, Confidence: confidence})
}

// SetOffers replaces the current offers (after a discovery response)
// and records the pending clarification, if any.
func (s *Session) SetOffers(offers []Offer, pending *Clarification) {
	s.Offers = offers
	s.Pending = pending
}

// ResolveOffer finds the offer the utterance refers to by token
// overlap with the offer labels; ties go to the earlier offer. The
// second result is false when nothing overlaps.
func (s *Session) ResolveOffer(text string) (Offer, bool) {
	toks := tokenSet(text)
	best := -1
	bestScore := 0
	for i, o := range s.Offers {
		score := 0
		for _, t := range textindex.TokenizeContent(o.Label) {
			if toks[t] {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return Offer{}, false
	}
	return s.Offers[best], true
}

func tokenSet(text string) map[string]bool {
	out := map[string]bool{}
	for _, t := range textindex.TokenizeContent(text) {
		out[t] = true
	}
	return out
}

// Choose marks an offer as the session focus and clears the pending
// clarification.
func (s *Session) Choose(offer Offer) {
	s.Focus = offer.ID
	s.Pending = nil
}

// LastUserTurn returns the most recent user turn, if any.
func (s *Session) LastUserTurn() (Turn, bool) {
	for i := len(s.Turns) - 1; i >= 0; i-- {
		if s.Turns[i].Role == RoleUser {
			return s.Turns[i], true
		}
	}
	return Turn{}, false
}

// ContextTerms returns the distinct content tokens of the last n user
// turns (newest first), the lightweight conversation context used for
// follow-up grounding.
func (s *Session) ContextTerms(n int) []string {
	var out []string
	seen := map[string]bool{}
	count := 0
	for i := len(s.Turns) - 1; i >= 0 && count < n; i-- {
		if s.Turns[i].Role != RoleUser {
			continue
		}
		count++
		for _, t := range textindex.TokenizeContent(s.Turns[i].Text) {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}
