package dialogue

import "testing"

func TestClassifyIntent(t *testing.T) {
	cases := []struct {
		text string
		want Intent
	}{
		{"Give me an overview of the working force in Switzerland", IntentDiscover},
		{"What is the Swiss workforce barometer?", IntentDescribe},
		{"I am interested in the barometer", IntentChoose},
		{"Can you please give me the seasonality insights, such as overall trend, etc.", IntentAnalyze},
		{"How many employees are there", IntentQuery},
		{"What is the average salary in employees", IntentQuery},
		{"list the name of employees", IntentQuery},
		{"asdf qwerty", IntentUnknown},
		{"find datasets about health", IntentDiscover},
		{"tell me about the employment distribution", IntentDescribe},
	}
	for _, c := range cases {
		if got := ClassifyIntent(c.text); got != c.want {
			t.Errorf("ClassifyIntent(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestIntentAndRoleStrings(t *testing.T) {
	if IntentQuery.String() != "query" || IntentUnknown.String() != "unknown" {
		t.Error("intent strings wrong")
	}
	if RoleUser.String() != "user" || RoleSystem.String() != "system" {
		t.Error("role strings wrong")
	}
}

func TestSessionTurns(t *testing.T) {
	s := NewSession()
	intent := s.AddUserTurn("overview of employment data")
	if intent != IntentDiscover {
		t.Errorf("intent = %v", intent)
	}
	s.AddSystemTurn("I found two datasets.", 0.9)
	if len(s.Turns) != 2 {
		t.Fatalf("turns = %d", len(s.Turns))
	}
	last, ok := s.LastUserTurn()
	if !ok || last.Text != "overview of employment data" {
		t.Errorf("last user turn = %+v", last)
	}
	if s.Turns[1].Confidence != 0.9 {
		t.Error("system confidence lost")
	}
}

func TestLastUserTurnEmpty(t *testing.T) {
	s := NewSession()
	if _, ok := s.LastUserTurn(); ok {
		t.Error("empty session has no user turn")
	}
	s.AddSystemTurn("hello", 1)
	if _, ok := s.LastUserTurn(); ok {
		t.Error("system-only session has no user turn")
	}
}

func TestResolveOffer(t *testing.T) {
	s := NewSession()
	s.SetOffers([]Offer{
		{ID: "emptype", Label: "Employment type distribution"},
		{ID: "barometer", Label: "Swiss Labour Market Barometer"},
	}, &Clarification{Question: "which one?"})
	got, ok := s.ResolveOffer("I am interested in the barometer")
	if !ok || got.ID != "barometer" {
		t.Errorf("resolve = %+v, %v", got, ok)
	}
	got, ok = s.ResolveOffer("the employment type one please")
	if !ok || got.ID != "emptype" {
		t.Errorf("resolve = %+v, %v", got, ok)
	}
	if _, ok := s.ResolveOffer("something entirely different"); ok {
		t.Error("unrelated text must not resolve")
	}
}

func TestPendingClarificationBiasesChoose(t *testing.T) {
	s := NewSession()
	s.SetOffers([]Offer{{ID: "barometer", Label: "Swiss Labour Market Barometer"}},
		&Clarification{Question: "which info would you prefer?"})
	// "the barometer" alone is not a choose-phrase, but with a pending
	// clarification and a resolvable offer it becomes one.
	intent := s.AddUserTurn("the barometer")
	if intent != IntentChoose {
		t.Errorf("intent = %v", intent)
	}
}

func TestChooseSetsFocus(t *testing.T) {
	s := NewSession()
	s.SetOffers([]Offer{{ID: "barometer", Label: "barometer"}}, &Clarification{Question: "?"})
	o, _ := s.ResolveOffer("barometer")
	s.Choose(o)
	if s.Focus != "barometer" {
		t.Errorf("focus = %q", s.Focus)
	}
	if s.Pending != nil {
		t.Error("pending clarification not cleared")
	}
}

func TestContextTerms(t *testing.T) {
	s := NewSession()
	s.AddUserTurn("overview of the labour market")
	s.AddSystemTurn("two datasets found", 0.8)
	s.AddUserTurn("seasonality of the barometer")
	terms := s.ContextTerms(2)
	set := map[string]bool{}
	for _, t := range terms {
		set[t] = true
	}
	for _, want := range []string{"labour", "market", "seasonality", "barometer"} {
		if !set[want] {
			t.Errorf("context missing %q: %v", want, terms)
		}
	}
	// n=1 only covers the newest user turn.
	terms = s.ContextTerms(1)
	set = map[string]bool{}
	for _, t := range terms {
		set[t] = true
	}
	if set["labour"] {
		t.Errorf("n=1 context leaked older turn: %v", terms)
	}
}

func TestRoleIntentRoundTrip(t *testing.T) {
	for _, r := range []Role{RoleUser, RoleSystem} {
		if got := ParseRole(r.String()); got != r {
			t.Errorf("ParseRole(%q) = %v, want %v", r.String(), got, r)
		}
	}
	intents := []Intent{IntentUnknown, IntentDiscover, IntentDescribe, IntentChoose,
		IntentAnalyze, IntentQuery, IntentConfirm, IntentFollowUp}
	for _, i := range intents {
		if got := ParseIntent(i.String()); got != i {
			t.Errorf("ParseIntent(%q) = %v, want %v", i.String(), got, i)
		}
	}
	// Garbage degrades to the default arms, never panics.
	if ParseRole("alien") != RoleSystem || ParseIntent("alien") != IntentUnknown {
		t.Error("unrecognized names must parse to the default arms")
	}
}
