package metrics

import (
	"math/rand"
	"sort"
)

// Bootstrap computes a percentile-bootstrap confidence interval for
// the mean of values: B resamples with replacement, interval at the
// given level (e.g. 0.95). Deterministic in seed. With fewer than 2
// values the interval collapses to the (single) mean.
func Bootstrap(values []float64, b int, level float64, seed int64) (lo, hi float64, err error) {
	if len(values) == 0 {
		return 0, 0, ErrEmpty
	}
	if b < 1 {
		b = 1000
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if len(values) == 1 {
		return values[0], values[0], nil
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, b)
	sample := make([]float64, len(values))
	for i := 0; i < b; i++ {
		for j := range sample {
			sample[j] = values[rng.Intn(len(values))]
		}
		means[i] = mean(sample)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(b))
	hiIdx := int((1 - alpha) * float64(b))
	if hiIdx >= b {
		hiIdx = b - 1
	}
	return means[loIdx], means[hiIdx], nil
}
