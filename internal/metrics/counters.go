package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LatencyRecorder accumulates durations and reports order statistics.
// It is safe for concurrent use, so parallel benchmark bodies can share
// one recorder.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Record adds one duration sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Time runs fn and records its wall-clock duration.
func (r *LatencyRecorder) Time(fn func()) {
	start := time.Now()
	fn()
	r.Record(time.Since(start))
}

// Count returns the number of recorded samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Mean returns the average recorded duration, or 0 with no samples.
func (r *LatencyRecorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank on a sorted copy; 0 with no samples.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.samples))
	copy(sorted, r.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Summary formats count/mean/p50/p95/p99 on one line.
func (r *LatencyRecorder) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v",
		r.Count(), r.Mean(), r.Percentile(50), r.Percentile(95), r.Percentile(99))
}

// OpsCounter counts named operations (distance computations, rows
// scanned, tokens generated, ...). Safe for concurrent use.
type OpsCounter struct {
	mu     sync.Mutex
	counts map[string]int64
}

// Add increments the named counter by n.
func (c *OpsCounter) Add(name string, n int64) {
	c.mu.Lock()
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[name] += n
	c.mu.Unlock()
}

// Get returns the value of the named counter (0 if never incremented).
func (c *OpsCounter) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Reset zeroes all counters.
func (c *OpsCounter) Reset() {
	c.mu.Lock()
	c.counts = nil
	c.mu.Unlock()
}

// Snapshot returns a copy of all counters, sorted-key iteration safe.
func (c *OpsCounter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}
