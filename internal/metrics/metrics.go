// Package metrics implements the evaluation measures prescribed by the
// paper's Evaluation section: Precision, Recall, F1, Accuracy, AUC, MSE
// for prediction tasks; MRR and NDCG for ranking tasks; calibration
// measures (ECE, Brier score) for probabilistic correctness estimates;
// and system measures (wall time, operation counts, memory) for
// efficiency.
//
// All functions are pure and allocation-light so they can be called
// from benchmarks without perturbing what they measure.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by measures that are undefined on empty input.
var ErrEmpty = errors.New("metrics: empty input")

// Confusion is a binary confusion matrix. Populate it with Observe and
// read the derived measures from its methods.
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe records one (predicted, actual) outcome pair.
func (c *Confusion) Observe(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of observed outcomes.
func (c *Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision returns TP/(TP+FP), or 0 when no positive predictions exist.
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when no actual positives exist.
func (c *Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// Accuracy returns the fraction of pairs where predicted equals actual.
// The two slices must have equal length.
func Accuracy(predicted, actual []bool) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, fmt.Errorf("metrics: length mismatch %d != %d", len(predicted), len(actual))
	}
	if len(predicted) == 0 {
		return 0, ErrEmpty
	}
	correct := 0
	for i := range predicted {
		if predicted[i] == actual[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(predicted)), nil
}

// MSE returns the mean squared error between predictions and targets.
func MSE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, fmt.Errorf("metrics: length mismatch %d != %d", len(predicted), len(actual))
	}
	if len(predicted) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range predicted {
		d := predicted[i] - actual[i]
		sum += d * d
	}
	return sum / float64(len(predicted)), nil
}

// AUC computes the area under the ROC curve for scores (higher = more
// positive) against binary labels, using the rank-sum formulation.
// Ties in score contribute half. Returns 0.5 when one class is absent.
func AUC(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("metrics: length mismatch %d != %d", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return 0, ErrEmpty
	}
	var pos, neg int
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5, nil
	}
	// Count concordant pairs with tie correction.
	type sl struct {
		s float64
		l bool
	}
	items := make([]sl, len(scores))
	for i := range scores {
		items[i] = sl{scores[i], labels[i]}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s < items[j].s })
	var rankSum float64 // sum of ranks of positives (1-based, average for ties)
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].s == items[i].s {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks i+1..j averaged
		for k := i; k < j; k++ {
			if items[k].l {
				rankSum += avgRank
			}
		}
		i = j
	}
	u := rankSum - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg)), nil
}

// MRR returns the mean reciprocal rank. Each ranks[i] is the 1-based
// rank of the first relevant item for query i; 0 means no relevant item
// was retrieved and contributes 0.
func MRR(ranks []int) (float64, error) {
	if len(ranks) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, r := range ranks {
		if r > 0 {
			sum += 1 / float64(r)
		}
	}
	return sum / float64(len(ranks)), nil
}

// DCG computes the discounted cumulative gain of a ranked list of
// graded relevances using the standard log2 discount.
func DCG(rels []float64) float64 {
	var dcg float64
	for i, rel := range rels {
		dcg += (math.Pow(2, rel) - 1) / math.Log2(float64(i)+2)
	}
	return dcg
}

// NDCG computes DCG normalized by the ideal DCG of the same relevance
// multiset. Returns 0 when the ideal DCG is 0 (all relevances zero).
func NDCG(rels []float64) float64 {
	ideal := make([]float64, len(rels))
	copy(ideal, rels)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	idcg := DCG(ideal)
	if idcg == 0 {
		return 0
	}
	return DCG(rels) / idcg
}

// NDCGAt truncates the list to k before computing NDCG; the ideal
// ranking is also truncated to k, per the standard definition.
func NDCGAt(rels []float64, k int) float64 {
	ideal := make([]float64, len(rels))
	copy(ideal, rels)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	if k < len(rels) {
		rels = rels[:k]
	}
	if k < len(ideal) {
		ideal = ideal[:k]
	}
	idcg := DCG(ideal)
	if idcg == 0 {
		return 0
	}
	return DCG(rels) / idcg
}

// RecallAtK returns |retrieved ∩ relevant| / |relevant| for ID sets.
func RecallAtK(retrieved, relevant []int) (float64, error) {
	if len(relevant) == 0 {
		return 0, ErrEmpty
	}
	rel := make(map[int]struct{}, len(relevant))
	for _, id := range relevant {
		rel[id] = struct{}{}
	}
	hit := 0
	for _, id := range retrieved {
		if _, ok := rel[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(relevant)), nil
}
