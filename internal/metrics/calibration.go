package metrics

import (
	"math"
	"sort"
)

// Prediction pairs a confidence estimate in [0,1] with whether the
// prediction was actually correct. It is the unit of every calibration
// measure in this package.
type Prediction struct {
	Confidence float64
	Correct    bool
}

// ECE computes the Expected Calibration Error over equal-width bins:
// the weighted mean absolute gap between per-bin mean confidence and
// per-bin accuracy. bins must be >= 1.
func ECE(preds []Prediction, bins int) (float64, error) {
	if len(preds) == 0 {
		return 0, ErrEmpty
	}
	if bins < 1 {
		bins = 10
	}
	type bin struct {
		n       int
		sumConf float64
		correct int
	}
	bs := make([]bin, bins)
	for _, p := range preds {
		i := int(p.Confidence * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		bs[i].n++
		bs[i].sumConf += p.Confidence
		if p.Correct {
			bs[i].correct++
		}
	}
	var ece float64
	n := float64(len(preds))
	for _, b := range bs {
		if b.n == 0 {
			continue
		}
		acc := float64(b.correct) / float64(b.n)
		conf := b.sumConf / float64(b.n)
		ece += float64(b.n) / n * math.Abs(acc-conf)
	}
	return ece, nil
}

// Brier computes the Brier score: mean squared distance between the
// confidence and the 0/1 correctness outcome. Lower is better.
func Brier(preds []Prediction) (float64, error) {
	if len(preds) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, p := range preds {
		y := 0.0
		if p.Correct {
			y = 1.0
		}
		d := p.Confidence - y
		sum += d * d
	}
	return sum / float64(len(preds)), nil
}

// RiskCoveragePoint is one point on a selective-prediction curve: at
// the given confidence Threshold the system answers a Coverage fraction
// of queries and commits Risk (error rate) on the answered subset.
type RiskCoveragePoint struct {
	Threshold float64
	Coverage  float64
	Risk      float64
}

// RiskCoverage sweeps abstention thresholds over the distinct observed
// confidences (descending) and returns the induced risk–coverage
// curve. The first point is the most selective non-empty one; the last
// answers everything (threshold 0).
func RiskCoverage(preds []Prediction) ([]RiskCoveragePoint, error) {
	if len(preds) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]Prediction, len(preds))
	copy(sorted, preds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Confidence > sorted[j].Confidence })
	n := float64(len(sorted))
	var curve []RiskCoveragePoint
	wrong := 0
	for i, p := range sorted {
		if !p.Correct {
			wrong++
		}
		// Emit a point at each confidence boundary (last of a run of
		// equal confidences).
		if i+1 < len(sorted) && sorted[i+1].Confidence == p.Confidence {
			continue
		}
		curve = append(curve, RiskCoveragePoint{
			Threshold: p.Confidence,
			Coverage:  float64(i+1) / n,
			Risk:      float64(wrong) / float64(i+1),
		})
	}
	return curve, nil
}

// AURC returns the area under the risk–coverage curve (lower is
// better), integrated by the trapezoid rule over coverage.
func AURC(preds []Prediction) (float64, error) {
	curve, err := RiskCoverage(preds)
	if err != nil {
		return 0, err
	}
	var area, prevCov, prevRisk float64
	for _, p := range curve {
		area += (p.Coverage - prevCov) * (p.Risk + prevRisk) / 2
		prevCov, prevRisk = p.Coverage, p.Risk
	}
	return area, nil
}

// SelectiveAccuracy returns coverage and accuracy when abstaining below
// the threshold. Accuracy is reported as 1 (vacuous) when nothing is
// answered, with coverage 0, so callers can detect the empty case.
func SelectiveAccuracy(preds []Prediction, threshold float64) (coverage, accuracy float64) {
	answered, correct := 0, 0
	for _, p := range preds {
		if p.Confidence >= threshold {
			answered++
			if p.Correct {
				correct++
			}
		}
	}
	if answered == 0 {
		return 0, 1
	}
	return float64(answered) / float64(len(preds)), float64(correct) / float64(answered)
}
