package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v want %v (tol %v)", msg, got, want, tol)
	}
}

func TestConfusionBasics(t *testing.T) {
	var c Confusion
	c.Observe(true, true)  // TP
	c.Observe(true, false) // FP
	c.Observe(false, true) // FN
	c.Observe(false, false)
	c.Observe(true, true) // TP
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	approx(t, c.Precision(), 2.0/3.0, 1e-12, "precision")
	approx(t, c.Recall(), 2.0/3.0, 1e-12, "recall")
	approx(t, c.F1(), 2.0/3.0, 1e-12, "f1")
	approx(t, c.Accuracy(), 3.0/5.0, 1e-12, "accuracy")
}

func TestConfusionEmpty(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("empty confusion must return zeros, not NaN")
	}
}

func TestAccuracy(t *testing.T) {
	got, err := Accuracy([]bool{true, false, true}, []bool{true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 2.0/3.0, 1e-12, "accuracy")
	if _, err := Accuracy(nil, nil); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	if _, err := Accuracy([]bool{true}, []bool{}); err == nil {
		t.Error("want length-mismatch error")
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2, 3}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 4.0/3.0, 1e-12, "mse")
}

func TestAUCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	got, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 1.0, 1e-12, "auc perfect")
}

func TestAUCRandom(t *testing.T) {
	// All identical scores: AUC must be 0.5 by tie handling.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	got, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 0.5, 1e-12, "auc ties")
}

func TestAUCOneClass(t *testing.T) {
	got, err := AUC([]float64{0.1, 0.9}, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 0.5, 1e-12, "auc one class")
}

func TestAUCInverted(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	got, _ := AUC(scores, labels)
	approx(t, got, 0.0, 1e-12, "auc inverted")
}

func TestMRR(t *testing.T) {
	got, err := MRR([]int{1, 2, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, (1+0.5+0+0.25)/4, 1e-12, "mrr")
}

func TestDCGAndNDCG(t *testing.T) {
	// Ideal ordering gives NDCG 1.
	if got := NDCG([]float64{3, 2, 1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("ideal NDCG = %v, want 1", got)
	}
	// Worst ordering strictly below 1.
	if got := NDCG([]float64{0, 1, 2, 3}); got >= 1 {
		t.Errorf("reversed NDCG = %v, want < 1", got)
	}
	if got := NDCG([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero NDCG = %v, want 0", got)
	}
}

func TestNDCGAt(t *testing.T) {
	rels := []float64{0, 3, 2}
	full := NDCG(rels)
	at2 := NDCGAt(rels, 2)
	if at2 >= full {
		t.Errorf("NDCG@2 (%v) should be below full NDCG (%v) here", at2, full)
	}
	if got := NDCGAt([]float64{3, 2, 1}, 10); math.Abs(got-1) > 1e-12 {
		t.Errorf("NDCG@10 of ideal = %v, want 1", got)
	}
}

func TestRecallAtK(t *testing.T) {
	got, err := RecallAtK([]int{1, 2, 3}, []int{2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 0.5, 1e-12, "recall@k")
	if _, err := RecallAtK([]int{1}, nil); err != ErrEmpty {
		t.Error("want ErrEmpty for empty relevant set")
	}
}

func TestECEPerfectCalibration(t *testing.T) {
	// 100 predictions at 0.8 confidence with exactly 80 correct.
	preds := make([]Prediction, 100)
	for i := range preds {
		preds[i] = Prediction{Confidence: 0.8, Correct: i < 80}
	}
	got, err := ECE(preds, 10)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 0, 1e-12, "ece calibrated")
}

func TestECEOverconfident(t *testing.T) {
	preds := make([]Prediction, 100)
	for i := range preds {
		preds[i] = Prediction{Confidence: 0.9, Correct: i < 50}
	}
	got, _ := ECE(preds, 10)
	approx(t, got, 0.4, 1e-12, "ece overconfident")
}

func TestBrier(t *testing.T) {
	preds := []Prediction{
		{Confidence: 1, Correct: true},
		{Confidence: 0, Correct: false},
	}
	got, _ := Brier(preds)
	approx(t, got, 0, 1e-12, "brier perfect")
	preds = []Prediction{{Confidence: 1, Correct: false}}
	got, _ = Brier(preds)
	approx(t, got, 1, 1e-12, "brier worst")
}

func TestRiskCoverage(t *testing.T) {
	preds := []Prediction{
		{Confidence: 0.9, Correct: true},
		{Confidence: 0.7, Correct: true},
		{Confidence: 0.5, Correct: false},
		{Confidence: 0.3, Correct: false},
	}
	curve, err := RiskCoverage(preds)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 4 {
		t.Fatalf("curve length = %d, want 4", len(curve))
	}
	if curve[0].Risk != 0 || curve[0].Coverage != 0.25 {
		t.Errorf("first point = %+v", curve[0])
	}
	last := curve[len(curve)-1]
	approx(t, last.Coverage, 1.0, 1e-12, "full coverage")
	approx(t, last.Risk, 0.5, 1e-12, "full-coverage risk")
	// Coverage must be non-decreasing.
	for i := 1; i < len(curve); i++ {
		if curve[i].Coverage < curve[i-1].Coverage {
			t.Errorf("coverage not monotone at %d", i)
		}
	}
}

func TestAURCOrdering(t *testing.T) {
	// Well-ordered confidences (correct ones higher) must have lower
	// AURC than anti-ordered.
	good := []Prediction{
		{0.9, true}, {0.8, true}, {0.2, false}, {0.1, false},
	}
	bad := []Prediction{
		{0.9, false}, {0.8, false}, {0.2, true}, {0.1, true},
	}
	ag, _ := AURC(good)
	ab, _ := AURC(bad)
	if ag >= ab {
		t.Errorf("AURC(good)=%v should be < AURC(bad)=%v", ag, ab)
	}
}

func TestSelectiveAccuracy(t *testing.T) {
	preds := []Prediction{
		{0.9, true}, {0.8, false}, {0.4, false}, {0.2, false},
	}
	cov, acc := SelectiveAccuracy(preds, 0.5)
	approx(t, cov, 0.5, 1e-12, "coverage")
	approx(t, acc, 0.5, 1e-12, "selective accuracy")
	cov, acc = SelectiveAccuracy(preds, 0.99)
	if cov != 0 || acc != 1 {
		t.Errorf("empty selection: cov=%v acc=%v", cov, acc)
	}
}

func TestLatencyRecorder(t *testing.T) {
	var r LatencyRecorder
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Fatalf("count = %d", r.Count())
	}
	if got := r.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := r.Percentile(99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := r.Mean(); got != 50*time.Millisecond+500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
	if s := r.Summary(); s == "" {
		t.Error("empty summary")
	}
}

func TestLatencyRecorderEmpty(t *testing.T) {
	var r LatencyRecorder
	if r.Mean() != 0 || r.Percentile(50) != 0 {
		t.Error("empty recorder must return zeros")
	}
}

func TestOpsCounter(t *testing.T) {
	var c OpsCounter
	c.Add("dist", 5)
	c.Add("dist", 7)
	c.Add("rows", 1)
	if c.Get("dist") != 12 || c.Get("rows") != 1 || c.Get("missing") != 0 {
		t.Errorf("counter state = %v", c.Snapshot())
	}
	snap := c.Snapshot()
	c.Add("dist", 1)
	if snap["dist"] != 12 {
		t.Error("snapshot must be a copy")
	}
	c.Reset()
	if c.Get("dist") != 0 {
		t.Error("reset failed")
	}
}

// Property: ECE is always within [0,1] and Brier within [0,1].
func TestCalibrationBoundsProperty(t *testing.T) {
	f := func(confs []float64, seed int64) bool {
		if len(confs) == 0 {
			return true
		}
		preds := make([]Prediction, len(confs))
		for i, c := range confs {
			c = math.Abs(math.Mod(c, 1))
			preds[i] = Prediction{Confidence: c, Correct: (int64(i)+seed)%3 == 0}
		}
		e, err := ECE(preds, 10)
		if err != nil {
			return false
		}
		b, err := Brier(preds)
		if err != nil {
			return false
		}
		return e >= 0 && e <= 1 && b >= 0 && b <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AUC is symmetric — flipping labels and negating scores
// preserves the value.
func TestAUCSymmetryProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		labels := make([]bool, len(raw))
		scores := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			scores[i] = v
			labels[i] = i%2 == 0
		}
		a1, err1 := AUC(scores, labels)
		neg := make([]float64, len(scores))
		flip := make([]bool, len(labels))
		for i := range scores {
			neg[i] = -scores[i]
			flip[i] = !labels[i]
		}
		a2, err2 := AUC(neg, flip)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a1-a2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBootstrapCoversTrueMean(t *testing.T) {
	// Values drawn around mean 0.7; the 95% interval should contain it.
	vals := make([]float64, 200)
	for i := range vals {
		if i%10 < 7 {
			vals[i] = 1
		}
	}
	lo, hi, err := Bootstrap(vals, 2000, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 0.7 || hi < 0.7 {
		t.Errorf("interval [%v, %v] misses 0.7", lo, hi)
	}
	if hi-lo <= 0 || hi-lo > 0.2 {
		t.Errorf("interval width = %v", hi-lo)
	}
}

func TestBootstrapWidthShrinksWithN(t *testing.T) {
	mk := func(n int) float64 {
		vals := make([]float64, n)
		for i := range vals {
			if i%2 == 0 {
				vals[i] = 1
			}
		}
		lo, hi, err := Bootstrap(vals, 1000, 0.95, 2)
		if err != nil {
			t.Fatal(err)
		}
		return hi - lo
	}
	if mk(400) >= mk(50) {
		t.Error("interval did not shrink with sample size")
	}
}

func TestBootstrapEdgeCases(t *testing.T) {
	if _, _, err := Bootstrap(nil, 100, 0.95, 1); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	lo, hi, err := Bootstrap([]float64{3}, 100, 0.95, 1)
	if err != nil || lo != 3 || hi != 3 {
		t.Errorf("single value = [%v, %v], %v", lo, hi, err)
	}
	// Deterministic in seed.
	a1, b1, _ := Bootstrap([]float64{1, 2, 3, 4}, 500, 0.9, 7)
	a2, b2, _ := Bootstrap([]float64{1, 2, 3, 4}, 500, 0.9, 7)
	if a1 != a2 || b1 != b2 {
		t.Error("bootstrap not deterministic")
	}
}
