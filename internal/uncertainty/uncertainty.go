// Package uncertainty implements the paper's P4 (Soundness)
// machinery for quantifying and acting on answer confidence:
//
//   - histogram recalibration, mapping a model's raw (typically
//     overconfident) scores to empirical correctness rates;
//   - evidence combination, merging self-consistency agreement,
//     grounding strength, and execution-verification outcomes into a
//     single confidence;
//   - abstention policies ("the system should be able to refrain from
//     producing answers when unable to produce any answer with
//     sufficient certainty"), including choosing the abstention
//     threshold that meets a target risk on held-out data.
package uncertainty

import (
	"errors"
	"fmt"
	"math"

	"github.com/reliable-cda/cda/internal/metrics"
)

// ErrUnfitted is returned when calibrating before fitting.
var ErrUnfitted = errors.New("uncertainty: calibrator not fitted")

// Calibrator maps raw confidence scores to calibrated probabilities.
type Calibrator interface {
	// Fit learns the mapping from (raw confidence, correctness)
	// pairs.
	Fit(preds []metrics.Prediction) error
	// Calibrate maps one raw score; implementations must clamp to
	// [0,1].
	Calibrate(raw float64) (float64, error)
}

// Identity passes raw scores through unchanged (the LLM-only
// baseline in E5).
type Identity struct{}

// Fit is a no-op.
func (Identity) Fit([]metrics.Prediction) error { return nil }

// Calibrate clamps and returns the raw score.
func (Identity) Calibrate(raw float64) (float64, error) { return clamp01(raw), nil }

// Histogram is an equal-width binning calibrator: each bin's output
// is its empirical accuracy, with add-one smoothing toward 0.5 so
// tiny bins do not produce extreme probabilities. Empty bins
// interpolate from the nearest fitted neighbours.
type Histogram struct {
	Bins   int
	fitted bool
	out    []float64
}

// NewHistogram creates a calibrator with the given bin count
// (default 10 when <= 0).
func NewHistogram(bins int) *Histogram {
	if bins <= 0 {
		bins = 10
	}
	return &Histogram{Bins: bins}
}

// Fit learns per-bin accuracies.
func (h *Histogram) Fit(preds []metrics.Prediction) error {
	if len(preds) == 0 {
		return metrics.ErrEmpty
	}
	n := make([]int, h.Bins)
	correct := make([]int, h.Bins)
	for _, p := range preds {
		b := h.bin(p.Confidence)
		n[b]++
		if p.Correct {
			correct[b]++
		}
	}
	h.out = make([]float64, h.Bins)
	filled := make([]bool, h.Bins)
	for b := range h.out {
		if n[b] > 0 {
			// Add-one smoothing toward 1/2.
			h.out[b] = (float64(correct[b]) + 1) / (float64(n[b]) + 2)
			filled[b] = true
		}
	}
	// Interpolate empty bins from nearest filled neighbours.
	for b := range h.out {
		if filled[b] {
			continue
		}
		lo, hi := -1, -1
		for i := b - 1; i >= 0; i-- {
			if filled[i] {
				lo = i
				break
			}
		}
		for i := b + 1; i < h.Bins; i++ {
			if filled[i] {
				hi = i
				break
			}
		}
		switch {
		case lo >= 0 && hi >= 0:
			w := float64(b-lo) / float64(hi-lo)
			h.out[b] = (1-w)*h.out[lo] + w*h.out[hi]
		case lo >= 0:
			h.out[b] = h.out[lo]
		case hi >= 0:
			h.out[b] = h.out[hi]
		default:
			h.out[b] = 0.5
		}
	}
	h.fitted = true
	return nil
}

// Calibrate maps a raw score through the fitted bins.
func (h *Histogram) Calibrate(raw float64) (float64, error) {
	if !h.fitted {
		return 0, ErrUnfitted
	}
	return h.out[h.bin(clamp01(raw))], nil
}

func (h *Histogram) bin(conf float64) int {
	b := int(conf * float64(h.Bins))
	if b >= h.Bins {
		b = h.Bins - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Evidence carries the soundness signals the core pipeline gathers
// for one answer.
type Evidence struct {
	// RawModel is the model's self-reported confidence (often
	// miscalibrated).
	RawModel float64
	// Consistency is the self-consistency agreement fraction from m
	// resamples (0 when not sampled).
	Consistency float64
	// GroundingStrength in [0,1]: how well the question grounded to
	// known entities/schema (0 = nothing grounded).
	GroundingStrength float64
	// Verified reports that the answer passed execution-based
	// verification (e.g. candidate SQL executed and matched across
	// samples); Unverifiable means no verification was possible.
	Verified     bool
	Unverifiable bool
}

// Combiner merges evidence into one confidence. The weights are
// logistic-regression-like log-odds contributions; the defaults were
// chosen so that (a) verification dominates, (b) consistency matters
// more than the raw score, matching the paper's argument that raw LLM
// confidence alone is unreliable.
type Combiner struct {
	Bias        float64
	WRaw        float64
	WConsist    float64
	WGround     float64
	WVerified   float64
	WUnverified float64
}

// DefaultCombiner returns the weighting used by the core system.
func DefaultCombiner() Combiner {
	return Combiner{
		Bias:        -2.2,
		WRaw:        0.6,
		WConsist:    2.6,
		WGround:     1.2,
		WVerified:   2.4,
		WUnverified: -0.8,
	}
}

// Combine produces a confidence in [0,1].
func (c Combiner) Combine(e Evidence) float64 {
	z := c.Bias +
		c.WRaw*e.RawModel +
		c.WConsist*e.Consistency +
		c.WGround*e.GroundingStrength
	if e.Verified {
		z += c.WVerified
	}
	if e.Unverifiable {
		z += c.WUnverified
	}
	return 1 / (1 + math.Exp(-z))
}

// EntropyConfidence converts a distribution of semantically clustered
// samples (counts per distinct answer) into a confidence via
// normalized Shannon entropy: 1 − H(p)/log(m) where m is the total
// sample count. One unanimous cluster gives 1; maximally split
// samples give 0. This is the semantic-uncertainty style of black-box
// UQ the paper cites alongside consistency voting: it rewards
// concentration of the whole distribution, not just the majority.
func EntropyConfidence(counts []int) float64 {
	var m int
	for _, c := range counts {
		m += c
	}
	if m == 0 {
		return 0
	}
	if m == 1 {
		return 1 // a single sample carries no disagreement signal
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(m)
		h -= p * math.Log(p)
	}
	conf := 1 - h/math.Log(float64(m))
	return clamp01(conf)
}

// Policy decides whether to answer or abstain.
type Policy struct {
	// Threshold is the minimum confidence required to answer.
	Threshold float64
}

// ShouldAnswer reports whether the confidence clears the threshold.
func (p Policy) ShouldAnswer(confidence float64) bool {
	return confidence >= p.Threshold
}

// ThresholdForRisk picks the smallest threshold whose selective risk
// on the provided labeled predictions is at most maxRisk, maximizing
// coverage subject to the risk budget. Returns an error when even
// answering nothing... i.e., when no threshold achieves the risk (the
// caller should then abstain always, threshold 1+).
func ThresholdForRisk(preds []metrics.Prediction, maxRisk float64) (float64, error) {
	curve, err := metrics.RiskCoverage(preds)
	if err != nil {
		return 0, err
	}
	bestCoverage := -1.0
	bestThreshold := math.Inf(1)
	for _, pt := range curve {
		if pt.Risk <= maxRisk && pt.Coverage > bestCoverage {
			bestCoverage = pt.Coverage
			bestThreshold = pt.Threshold
		}
	}
	if bestCoverage < 0 {
		return 0, fmt.Errorf("uncertainty: no threshold achieves risk <= %v", maxRisk)
	}
	return bestThreshold, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
