package uncertainty

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/reliable-cda/cda/internal/metrics"
)

// overconfidentPreds simulates an overconfident model: raw scores near
// 0.9 but only accuracy `acc`.
func overconfidentPreds(n int, acc float64, seed int64) []metrics.Prediction {
	rng := rand.New(rand.NewSource(seed))
	out := make([]metrics.Prediction, n)
	for i := range out {
		out[i] = metrics.Prediction{
			Confidence: 0.85 + 0.1*rng.Float64(),
			Correct:    rng.Float64() < acc,
		}
	}
	return out
}

func TestIdentity(t *testing.T) {
	var c Identity
	if err := c.Fit(nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.Calibrate(1.7)
	if err != nil || got != 1 {
		t.Errorf("calibrate = %v, %v", got, err)
	}
	got, _ = c.Calibrate(-0.3)
	if got != 0 {
		t.Errorf("negative clamp = %v", got)
	}
}

func TestHistogramReducesECE(t *testing.T) {
	train := overconfidentPreds(2000, 0.5, 1)
	test := overconfidentPreds(2000, 0.5, 2)
	h := NewHistogram(10)
	if err := h.Fit(train); err != nil {
		t.Fatal(err)
	}
	raw := make([]metrics.Prediction, len(test))
	cal := make([]metrics.Prediction, len(test))
	for i, p := range test {
		raw[i] = p
		cc, err := h.Calibrate(p.Confidence)
		if err != nil {
			t.Fatal(err)
		}
		cal[i] = metrics.Prediction{Confidence: cc, Correct: p.Correct}
	}
	eceRaw, _ := metrics.ECE(raw, 10)
	eceCal, _ := metrics.ECE(cal, 10)
	if eceCal >= eceRaw {
		t.Errorf("calibration did not help: raw %v cal %v", eceRaw, eceCal)
	}
	if eceCal > 0.1 {
		t.Errorf("calibrated ECE = %v, still large", eceCal)
	}
}

func TestHistogramUnfitted(t *testing.T) {
	h := NewHistogram(10)
	if _, err := h.Calibrate(0.5); !errors.Is(err, ErrUnfitted) {
		t.Errorf("err = %v", err)
	}
	if err := h.Fit(nil); !errors.Is(err, metrics.ErrEmpty) {
		t.Errorf("empty fit err = %v", err)
	}
}

func TestHistogramEmptyBinInterpolation(t *testing.T) {
	// Train only at the extremes; mid-range bins must interpolate.
	var train []metrics.Prediction
	for i := 0; i < 100; i++ {
		train = append(train,
			metrics.Prediction{Confidence: 0.05, Correct: false},
			metrics.Prediction{Confidence: 0.95, Correct: true},
		)
	}
	h := NewHistogram(10)
	if err := h.Fit(train); err != nil {
		t.Fatal(err)
	}
	lo, _ := h.Calibrate(0.05)
	mid, _ := h.Calibrate(0.5)
	hi, _ := h.Calibrate(0.95)
	if !(lo < mid && mid < hi) {
		t.Errorf("interpolation not monotone: %v %v %v", lo, mid, hi)
	}
}

func TestHistogramDefaultBins(t *testing.T) {
	h := NewHistogram(0)
	if h.Bins != 10 {
		t.Errorf("default bins = %d", h.Bins)
	}
}

func TestCombinerOrdering(t *testing.T) {
	c := DefaultCombiner()
	weak := c.Combine(Evidence{RawModel: 0.9, Unverifiable: true})
	grounded := c.Combine(Evidence{RawModel: 0.9, GroundingStrength: 1, Unverifiable: true})
	consistent := c.Combine(Evidence{RawModel: 0.9, GroundingStrength: 1, Consistency: 1, Unverifiable: true})
	verified := c.Combine(Evidence{RawModel: 0.9, GroundingStrength: 1, Consistency: 1, Verified: true})
	if !(weak < grounded && grounded < consistent && consistent < verified) {
		t.Errorf("ordering violated: %v %v %v %v", weak, grounded, consistent, verified)
	}
	if verified < 0.9 {
		t.Errorf("fully supported answer confidence = %v, want high", verified)
	}
	if weak > 0.5 {
		t.Errorf("unsupported answer confidence = %v, want low", weak)
	}
}

func TestCombinerBounds(t *testing.T) {
	c := DefaultCombiner()
	f := func(raw, cons, ground float64, v, u bool) bool {
		e := Evidence{
			RawModel:          math.Abs(math.Mod(raw, 1)),
			Consistency:       math.Abs(math.Mod(cons, 1)),
			GroundingStrength: math.Abs(math.Mod(ground, 1)),
			Verified:          v,
			Unverifiable:      u,
		}
		got := c.Combine(e)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolicy(t *testing.T) {
	p := Policy{Threshold: 0.7}
	if !p.ShouldAnswer(0.7) || p.ShouldAnswer(0.69) {
		t.Error("threshold comparison wrong")
	}
}

func TestThresholdForRisk(t *testing.T) {
	preds := []metrics.Prediction{
		{Confidence: 0.9, Correct: true},
		{Confidence: 0.8, Correct: true},
		{Confidence: 0.6, Correct: false},
		{Confidence: 0.4, Correct: true},
		{Confidence: 0.2, Correct: false},
	}
	// Risk 0 achievable only at coverage 0.4 (top two).
	th, err := ThresholdForRisk(preds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if th != 0.8 {
		t.Errorf("threshold = %v", th)
	}
	// Risk 0.4 allows answering everything (2/5 wrong).
	th, err = ThresholdForRisk(preds, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if th != 0.2 {
		t.Errorf("threshold = %v", th)
	}
	// Impossible risk.
	bad := []metrics.Prediction{{Confidence: 0.9, Correct: false}}
	if _, err := ThresholdForRisk(bad, 0.1); err == nil {
		t.Error("impossible risk must error")
	}
	if _, err := ThresholdForRisk(nil, 0.1); err == nil {
		t.Error("empty preds must error")
	}
}

func TestAbstentionImprovesSelectiveAccuracy(t *testing.T) {
	// Confidence correlates with correctness; abstention below a
	// tuned threshold must raise accuracy on the answered subset.
	rng := rand.New(rand.NewSource(9))
	var preds []metrics.Prediction
	for i := 0; i < 2000; i++ {
		conf := rng.Float64()
		preds = append(preds, metrics.Prediction{Confidence: conf, Correct: rng.Float64() < conf})
	}
	_, accAll := metrics.SelectiveAccuracy(preds, 0)
	th, err := ThresholdForRisk(preds, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cov, accSel := metrics.SelectiveAccuracy(preds, th)
	if accSel <= accAll {
		t.Errorf("selective accuracy %v <= overall %v", accSel, accAll)
	}
	if cov == 0 {
		t.Error("abstained on everything")
	}
}

// Property: histogram calibration output is always in [0,1].
func TestHistogramRangeProperty(t *testing.T) {
	train := overconfidentPreds(500, 0.7, 11)
	h := NewHistogram(10)
	if err := h.Fit(train); err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		got, err := h.Calibrate(raw)
		return err == nil && got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntropyConfidence(t *testing.T) {
	if got := EntropyConfidence([]int{5}); got != 1 {
		t.Errorf("unanimous = %v", got)
	}
	if got := EntropyConfidence([]int{1, 1, 1, 1, 1}); got != 0 {
		t.Errorf("uniform = %v", got)
	}
	mid := EntropyConfidence([]int{4, 1})
	if mid <= 0 || mid >= 1 {
		t.Errorf("4-1 split = %v", mid)
	}
	if EntropyConfidence([]int{3, 2}) >= mid {
		t.Error("3-2 split should be less confident than 4-1")
	}
	if got := EntropyConfidence(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := EntropyConfidence([]int{1}); got != 1 {
		t.Errorf("single sample = %v", got)
	}
	if got := EntropyConfidence([]int{0, 5, 0}); got != 1 {
		t.Errorf("zero clusters ignored = %v", got)
	}
}
