package catalog

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func fixture() *Catalog {
	c := New()
	c.Add(Dataset{
		ID: "barometer", Name: "Swiss Labour Market Barometer",
		Description: "monthly leading indicator based on a survey of labour market experts from 22 cantons",
		Source:      "https://www.arbeit.swiss/secoalv/en/home/schweizer-arbeitsmarktbarometer.html",
		Tags:        []string{"labour", "employment", "indicator"},
		UpdatedAt:   100, Cadence: 1,
	})
	c.Add(Dataset{
		ID: "emptype", Name: "Employment type distribution",
		Description: "distribution of employment types for employees older than 15",
		Source:      "bfs.admin.ch",
		Tags:        []string{"employment", "demographics"},
		UpdatedAt:   96, Cadence: 12,
	})
	c.Add(Dataset{
		ID: "chocolate", Name: "Chocolate exports",
		Description: "annual chocolate export volumes by destination",
		UpdatedAt:   90, Cadence: 12,
	})
	return c
}

func TestAddGetList(t *testing.T) {
	c := fixture()
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	d, err := c.Get("barometer")
	if err != nil || d.Name != "Swiss Labour Market Barometer" {
		t.Errorf("get = %v, %v", d, err)
	}
	if _, err := c.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing get err = %v", err)
	}
	if got := c.List(); len(got) != 3 || got[0].ID != "barometer" {
		t.Errorf("list = %v", got)
	}
	// Replacement keeps count.
	c.Add(Dataset{ID: "chocolate", Name: "Chocolate exports v2", UpdatedAt: 100, Cadence: 12})
	if c.Len() != 3 {
		t.Error("replace duplicated dataset")
	}
	d, _ = c.Get("chocolate")
	if d.Name != "Chocolate exports v2" {
		t.Error("replace did not update")
	}
}

func TestFreshness(t *testing.T) {
	d := &Dataset{UpdatedAt: 100, Cadence: 10}
	if got := Freshness(d, 100); got != 1 {
		t.Errorf("fresh now = %v", got)
	}
	if got := Freshness(d, 90); got != 1 {
		t.Errorf("future update = %v", got)
	}
	got := Freshness(d, 110)
	if math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Errorf("one-cadence freshness = %v", got)
	}
	static := &Dataset{UpdatedAt: 0, Cadence: 0}
	if Freshness(static, 1000) != 1 {
		t.Error("static dataset must never rot")
	}
}

func TestRotted(t *testing.T) {
	d := &Dataset{UpdatedAt: 0, Cadence: 1}
	if Rotted(d, 1) {
		t.Error("fresh dataset flagged rotted")
	}
	if !Rotted(d, 10) {
		t.Error("ancient dataset not rotted")
	}
}

func TestSearchRelevance(t *testing.T) {
	c := fixture()
	recs := c.Search("labour market barometer", 5, 100)
	if len(recs) == 0 || recs[0].Dataset.ID != "barometer" {
		t.Fatalf("recs = %v", recs)
	}
	if recs[0].Relevance != 1 {
		t.Errorf("top relevance = %v", recs[0].Relevance)
	}
	for _, r := range recs {
		if r.Dataset.ID == "chocolate" {
			t.Error("irrelevant dataset recommended")
		}
	}
	if recs[0].Reason == "" || !strings.Contains(recs[0].Reason, "labour") {
		t.Errorf("reason = %q", recs[0].Reason)
	}
}

func TestSearchFigure1Scenario(t *testing.T) {
	// The Figure 1 first turn: an employment question should surface
	// both the employment-type dataset and the barometer.
	c := fixture()
	recs := c.Search("overview of employment and the labour market", 5, 100)
	ids := map[string]bool{}
	for _, r := range recs {
		ids[r.Dataset.ID] = true
	}
	if !ids["barometer"] || !ids["emptype"] {
		t.Errorf("expected both labour datasets, got %v", ids)
	}
}

func TestSearchExcludesRotted(t *testing.T) {
	c := fixture()
	// At epoch 130 the barometer (cadence 1, updated 100) has rotted.
	recs := c.Search("labour market barometer", 5, 130)
	for _, r := range recs {
		if r.Dataset.ID == "barometer" {
			t.Error("rotted dataset recommended")
		}
	}
}

func TestSearchFreshnessReranks(t *testing.T) {
	c := New()
	c.Add(Dataset{ID: "old", Name: "employment statistics", Description: "employment statistics", UpdatedAt: 95, Cadence: 10})
	c.Add(Dataset{ID: "new", Name: "employment statistics", Description: "employment statistics", UpdatedAt: 100, Cadence: 10})
	recs := c.Search("employment statistics", 2, 100)
	if len(recs) != 2 || recs[0].Dataset.ID != "new" {
		t.Errorf("freshness rerank = %v", recs)
	}
}

func TestSearchNoMatch(t *testing.T) {
	c := fixture()
	if recs := c.Search("quantum chromodynamics", 5, 100); len(recs) != 0 {
		t.Errorf("recs = %v", recs)
	}
}

func TestSearchTopK(t *testing.T) {
	c := fixture()
	recs := c.Search("employment", 1, 100)
	if len(recs) != 1 {
		t.Errorf("k=1 recs = %v", recs)
	}
}

func TestDescribe(t *testing.T) {
	c := fixture()
	d, _ := c.Get("barometer")
	s := Describe(d)
	if !strings.Contains(s, "monthly leading indicator") || !strings.Contains(s, "Source: https://www.arbeit.swiss") {
		t.Errorf("describe = %q", s)
	}
	nosrc := Describe(&Dataset{Name: "x", Description: "y"})
	if strings.Contains(nosrc, "Source:") {
		t.Error("sourceless describe must omit Source line")
	}
}

func TestSweep(t *testing.T) {
	c := fixture()
	// At epoch 120: barometer age 20 of cadence 1 → rotted; chocolate
	// age 30 of cadence 12 → freshness ≈ 0.08, still kept.
	removed := c.Sweep(120)
	if len(removed) != 1 || removed[0] != "barometer" {
		t.Errorf("removed = %v", removed)
	}
	if c.Len() != 2 {
		t.Errorf("len after sweep = %d", c.Len())
	}
	if _, err := c.Get("barometer"); err == nil {
		t.Error("swept dataset still present")
	}
	// Search index must rebuild after sweep.
	if recs := c.Search("barometer", 5, 120); len(recs) != 0 {
		t.Errorf("swept dataset still searchable: %v", recs)
	}
	if again := c.Sweep(120); len(again) != 0 {
		t.Errorf("second sweep removed %v", again)
	}
}

func TestReasonOutdatedNote(t *testing.T) {
	c := New()
	c.Add(Dataset{ID: "d", Name: "employment", Description: "employment data", UpdatedAt: 0, Cadence: 10})
	recs := c.Search("employment", 1, 20) // freshness e^-2 ≈ 0.135
	if len(recs) != 1 {
		t.Fatalf("recs = %v", recs)
	}
	if !strings.Contains(recs[0].Reason, "outdated") {
		t.Errorf("reason = %q", recs[0].Reason)
	}
}

func TestSearchDenseVocabularyMismatch(t *testing.T) {
	c := New()
	c.Add(Dataset{ID: "emp", Name: "Employment statistics", Description: "employment figures for swiss cantons", UpdatedAt: 10, Cadence: 12})
	c.Add(Dataset{ID: "choc", Name: "Chocolate exports", Description: "chocolate export volumes", UpdatedAt: 10, Cadence: 12})
	// "employees" never appears verbatim; BM25 finds nothing, dense does.
	if recs := c.Search("employees", 2, 10); len(recs) != 0 {
		t.Skipf("BM25 unexpectedly matched: %v", recs)
	}
	recs := c.SearchDense("employees in cantons", 1, 10)
	if len(recs) == 0 || recs[0].Dataset.ID != "emp" {
		t.Errorf("dense recs = %v", recs)
	}
}

func TestSearchHybrid(t *testing.T) {
	c := fixture()
	recs := c.SearchHybrid("labour market barometer", 3, 100)
	if len(recs) == 0 || recs[0].Dataset.ID != "barometer" {
		t.Errorf("hybrid recs = %v", recs)
	}
	// Hybrid must also exclude rotted datasets.
	recs = c.SearchHybrid("labour market barometer", 3, 130)
	for _, r := range recs {
		if r.Dataset.ID == "barometer" {
			t.Error("rotted dataset in hybrid results")
		}
	}
}
