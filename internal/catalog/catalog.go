// Package catalog implements dataset discovery for the CDA data
// layer: a registry of datasets with descriptive metadata, BM25
// search over their descriptions, freshness scoring, and the
// data-rotting policy the paper calls for ("the ability to identify
// and discard parts of the data that are outdated or obsolete").
//
// Time is a logical epoch counter (e.g. months since the catalog
// began) so experiments are deterministic.
package catalog

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/reliable-cda/cda/internal/embed"
	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/textindex"
)

// ErrNotFound is returned for unknown dataset IDs.
var ErrNotFound = errors.New("catalog: dataset not found")

// Dataset is one discoverable data source.
type Dataset struct {
	ID          string
	Name        string
	Description string
	// Source is the citable origin (URI or publisher) used in
	// provenance annotations.
	Source string
	Tags   []string
	// Table holds the actual data when the dataset is relational.
	Table *storage.Table
	// UpdatedAt is the logical epoch of the last refresh.
	UpdatedAt int
	// Cadence is the expected refresh interval in epochs (0 = static
	// reference data that never rots).
	Cadence int
}

// Recommendation is one ranked discovery result with the reason the
// system can show the user (P3 Explainability at the discovery step).
type Recommendation struct {
	Dataset   *Dataset
	Score     float64 // relevance × freshness
	Relevance float64 // BM25-derived, normalized per query
	Freshness float64
	Reason    string
}

// Catalog is a searchable dataset registry. Safe for concurrent use.
type Catalog struct {
	mu    sync.RWMutex
	byID  map[string]*Dataset
	order []string
	index *textindex.Index
	dense *embed.DenseIndex
	stale bool
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{byID: make(map[string]*Dataset)}
}

// Add registers (or replaces) a dataset.
func (c *Catalog) Add(d Dataset) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.byID[d.ID]; !exists {
		c.order = append(c.order, d.ID)
	}
	copied := d
	c.byID[d.ID] = &copied
	c.stale = true
}

// Get returns the dataset with the given ID.
func (c *Catalog) Get(id string) (*Dataset, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return d, nil
}

// List returns datasets in registration order.
func (c *Catalog) List() []*Dataset {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Dataset, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.byID[id])
	}
	return out
}

// Len returns the number of registered datasets.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byID)
}

func (c *Catalog) ensureIndex() (*textindex.Index, *embed.DenseIndex) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.index == nil || c.stale {
		ix := textindex.NewIndex()
		dense := embed.NewDenseIndex(nil)
		for _, id := range c.order {
			d := c.byID[id]
			text := d.Name + " " + d.Description + " " + strings.Join(d.Tags, " ")
			ix.Add(textindex.Document{ID: d.ID, Text: text})
			dense.Add(embed.Item{ID: d.ID, Text: text})
		}
		c.index = ix
		c.dense = dense
		c.stale = false
	}
	// The indexes are rebuilt from scratch under the lock and never
	// mutated after publication — a rebuild swaps in fresh objects, so
	// the returned references are immutable snapshots.
	return c.index, c.dense // cdalint:ignore guard-escape -- immutable-after-build snapshot; rebuilds replace, never mutate
}

// Freshness returns the dataset's freshness in [0,1] at the logical
// time `now`: exp(-age/cadence). Static datasets (Cadence 0) are
// always 1.
func Freshness(d *Dataset, now int) float64 {
	if d.Cadence <= 0 {
		return 1
	}
	age := now - d.UpdatedAt
	if age <= 0 {
		return 1
	}
	return math.Exp(-float64(age) / float64(d.Cadence))
}

// RotThreshold is the freshness below which a dataset is considered
// rotted and excluded from recommendations (≈ age > 3 cadences).
const RotThreshold = 0.05

// Rotted reports whether the dataset should be discarded at `now`.
func Rotted(d *Dataset, now int) bool { return Freshness(d, now) < RotThreshold }

// Search ranks datasets against the question by BM25 relevance
// weighted by freshness, excluding rotted datasets. Relevance is
// normalized by the query's best score so Score stays comparable
// across queries.
func (c *Catalog) Search(question string, k int, now int) []Recommendation {
	ix, _ := c.ensureIndex()
	hits := ix.Search(question, c.Len())
	if len(hits) == 0 {
		return nil
	}
	best := hits[0].Score
	scored := make([]scoredID, len(hits))
	for i, h := range hits {
		scored[i] = scoredID{id: h.ID, rel: h.Score / best}
	}
	return c.rank(question, scored, k, now)
}

// SearchDense ranks purely by embedding similarity — the "dense
// representations in a unified space" retrieval mode. It finds
// datasets whose descriptions share no exact term with the question
// (vocabulary mismatch), at the cost of occasionally surfacing
// loosely related items.
func (c *Catalog) SearchDense(question string, k int, now int) []Recommendation {
	_, dense := c.ensureIndex()
	hits := dense.Search(question, c.Len())
	var scored []scoredID
	for _, h := range hits {
		if h.Score <= 0 {
			continue
		}
		scored = append(scored, scoredID{id: h.ID, rel: h.Score})
	}
	return c.rank(question, scored, k, now)
}

// SearchHybrid fuses the lexical and dense rankings by reciprocal
// rank (the multimodal-index discovery mode).
func (c *Catalog) SearchHybrid(question string, k int, now int) []Recommendation {
	ix, dense := c.ensureIndex()
	lexHits := ix.Search(question, c.Len())
	denseHits := dense.Search(question, c.Len())
	kept := denseHits[:0]
	for _, h := range denseHits {
		if h.Score > 0 {
			kept = append(kept, h)
		}
	}
	fused := embed.Hybrid(kept, lexHits, c.Len())
	if len(fused) == 0 {
		return nil
	}
	best := fused[0].Score
	scored := make([]scoredID, len(fused))
	for i, h := range fused {
		scored[i] = scoredID{id: h.ID, rel: h.Score / best}
	}
	return c.rank(question, scored, k, now)
}

type scoredID struct {
	id  string
	rel float64
}

func (c *Catalog) rank(question string, scored []scoredID, k, now int) []Recommendation {
	var recs []Recommendation
	for _, s := range scored {
		d, err := c.Get(s.id)
		if err != nil {
			continue
		}
		if Rotted(d, now) {
			continue
		}
		fresh := Freshness(d, now)
		recs = append(recs, Recommendation{
			Dataset:   d,
			Relevance: s.rel,
			Freshness: fresh,
			Score:     s.rel * fresh,
			Reason:    reason(question, d, s.rel, fresh),
		})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Score != recs[j].Score {
			return recs[i].Score > recs[j].Score
		}
		return recs[i].Dataset.ID < recs[j].Dataset.ID
	})
	if len(recs) > k {
		recs = recs[:k]
	}
	return recs
}

func reason(question string, d *Dataset, rel, fresh float64) string {
	qToks := textindex.TokenizeContent(question)
	dToks := map[string]bool{}
	for _, t := range textindex.TokenizeContent(d.Name + " " + d.Description) {
		dToks[t] = true
	}
	var matched []string
	for _, t := range qToks {
		if dToks[t] {
			matched = append(matched, t)
		}
	}
	r := fmt.Sprintf("matched %s", strings.Join(matched, ", "))
	if len(matched) == 0 {
		r = "matched related vocabulary"
	}
	if fresh < 0.5 {
		r += " (note: dataset may be outdated)"
	}
	return r
}

// Describe renders the one-paragraph dataset summary with its source,
// as the Figure 1 system does for the barometer.
func Describe(d *Dataset) string {
	s := fmt.Sprintf("%s: %s", d.Name, d.Description)
	if d.Source != "" {
		s += fmt.Sprintf("\nSource: %s", d.Source)
	}
	return s
}

// Sweep removes rotted datasets from the catalog and returns the IDs
// it discarded — the explicit data-rotting maintenance pass.
func (c *Catalog) Sweep(now int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var removed []string
	kept := c.order[:0]
	for _, id := range c.order {
		if Rotted(c.byID[id], now) {
			removed = append(removed, id)
			delete(c.byID, id)
			continue
		}
		kept = append(kept, id)
	}
	c.order = kept
	if len(removed) > 0 {
		c.stale = true
	}
	return removed
}
