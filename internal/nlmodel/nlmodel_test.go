package nlmodel

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func trainedModel() *NGram {
	m := NewNGram()
	m.Train([][]string{
		{"the", "labour", "market", "is", "seasonal"},
		{"the", "labour", "market", "barometer", "is", "monthly"},
		{"employment", "is", "seasonal"},
	})
	return m
}

func TestProbSmoothing(t *testing.T) {
	m := trainedModel()
	// "labour" follows "the" twice out of 2 totals; smoothed < 1.
	p := m.Prob("the", "labour")
	if p <= 0.2 || p >= 1 {
		t.Errorf("P(labour|the) = %v", p)
	}
	// Unseen continuation still gets positive mass.
	if m.Prob("the", "seasonal") <= 0 {
		t.Error("unseen continuation must have positive probability")
	}
	// Probabilities over the vocabulary sum to 1.
	var sum float64
	for _, tok := range m.Vocab() {
		sum += m.Prob("the", tok)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probability mass = %v", sum)
	}
}

func TestPerplexityOrdersFluency(t *testing.T) {
	m := trainedModel()
	fluent := m.Perplexity([]string{"the", "labour", "market", "is", "seasonal"})
	weird := m.Perplexity([]string{"seasonal", "the", "monthly", "employment"})
	if fluent >= weird {
		t.Errorf("fluent ppl %v >= weird ppl %v", fluent, weird)
	}
	empty := NewNGram()
	if !math.IsInf(empty.Perplexity([]string{"x"}), 1) {
		t.Error("untrained perplexity must be +Inf")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := trainedModel()
	a := m.Generate(rand.New(rand.NewSource(5)), 10, 1.0, nil)
	b := m.Generate(rand.New(rand.NewSource(5)), 10, 1.0, nil)
	if Detokenize(a) != Detokenize(b) {
		t.Errorf("same seed produced %v vs %v", a, b)
	}
	c := m.Generate(rand.New(rand.NewSource(6)), 10, 1.0, nil)
	_ = c // different seed may or may not differ; just ensure no panic
}

func TestGenerateRespectsMaxTokens(t *testing.T) {
	m := trainedModel()
	out := m.Generate(rand.New(rand.NewSource(1)), 3, 1.0, nil)
	if len(out) > 3 {
		t.Errorf("generated %d tokens", len(out))
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	m := trainedModel()
	if out := m.Generate(nil, 5, 1, nil); out != nil {
		t.Error("nil rng must return nil")
	}
	if out := m.Generate(rand.New(rand.NewSource(1)), 0, 1, nil); out != nil {
		t.Error("maxTokens 0 must return nil")
	}
	if out := NewNGram().Generate(rand.New(rand.NewSource(1)), 5, 1, nil); out != nil {
		t.Error("untrained model must return nil")
	}
}

func TestConstrainedDecoding(t *testing.T) {
	m := trainedModel()
	// Forbid the token "seasonal" entirely.
	constraint := func(prev, cand string) bool { return cand != "seasonal" }
	for seed := int64(0); seed < 20; seed++ {
		out := m.Generate(rand.New(rand.NewSource(seed)), 20, 1.5, constraint)
		for _, tok := range out {
			if tok == "seasonal" {
				t.Fatalf("constraint violated in %v", out)
			}
		}
	}
}

func TestConstraintBlockingEverything(t *testing.T) {
	m := trainedModel()
	out := m.Generate(rand.New(rand.NewSource(1)), 5, 1, func(_, _ string) bool { return false })
	if len(out) != 0 {
		t.Errorf("fully blocked generation = %v", out)
	}
}

func TestChannelZeroRateIsIdentity(t *testing.T) {
	ch := Channel{HallucinationRate: 0, Fabrications: []string{"bogus"}}
	in := []string{"SELECT", "a", "FROM", "t"}
	out := ch.Corrupt(rand.New(rand.NewSource(1)), in)
	if Detokenize(out) != Detokenize(in) {
		t.Errorf("zero-rate corruption changed %v -> %v", in, out)
	}
}

func TestChannelCorruptsAtHighRate(t *testing.T) {
	ch := Channel{HallucinationRate: 1, Fabrications: []string{"bogus"}}
	in := []string{"SELECT", "a", "FROM", "t"}
	rng := rand.New(rand.NewSource(2))
	out := ch.Corrupt(rng, in)
	if Detokenize(out) == Detokenize(in) {
		t.Error("rate-1 corruption left sequence unchanged")
	}
	// Input must not be mutated.
	if in[0] != "SELECT" {
		t.Error("input mutated")
	}
}

func TestChannelRateScaling(t *testing.T) {
	in := make([]string, 200)
	for i := range in {
		in[i] = "tok"
	}
	count := func(rate float64) int {
		ch := Channel{HallucinationRate: rate, Fabrications: []string{"bogus"}}
		out := ch.Corrupt(rand.New(rand.NewSource(3)), in)
		changed := 0
		for _, tok := range out {
			if tok == "bogus" {
				changed++
			}
		}
		return changed
	}
	if !(count(0.4) > count(0.1)) {
		t.Error("corruption count not increasing in rate")
	}
}

func TestRawConfidenceBounds(t *testing.T) {
	rc := RawConfidence{Base: 0.9, Noise: 0.5}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		v := rc.Score(rng)
		if v < 0 || v > 1 {
			t.Fatalf("confidence %v out of range", v)
		}
	}
}

func TestRawConfidenceOverconfident(t *testing.T) {
	rc := RawConfidence{Base: 0.9, Noise: 0.02}
	rng := rand.New(rand.NewSource(5))
	var sum float64
	for i := 0; i < 500; i++ {
		sum += rc.Score(rng)
	}
	if mean := sum / 500; mean < 0.85 {
		t.Errorf("mean confidence %v, want high regardless of accuracy", mean)
	}
}

func TestSelfConsistency(t *testing.T) {
	answers := []string{"a", "b", "a", "a", "c"}
	got, agree := SelfConsistency(len(answers), func(i int) string { return answers[i] })
	if got != "a" || agree != 0.6 {
		t.Errorf("consistency = %q %v", got, agree)
	}
	if _, agree := SelfConsistency(0, nil); agree != 0 {
		t.Error("m=0 must return 0 agreement")
	}
}

func TestSelfConsistencyTieBreakDeterministic(t *testing.T) {
	got1, _ := SelfConsistency(2, func(i int) string { return []string{"b", "a"}[i] })
	got2, _ := SelfConsistency(2, func(i int) string { return []string{"a", "b"}[i] })
	if got1 != got2 {
		t.Errorf("tie-break not deterministic: %q vs %q", got1, got2)
	}
}

// Property: generation under a whitelist constraint only emits
// whitelisted tokens.
func TestWhitelistProperty(t *testing.T) {
	m := trainedModel()
	allowed := map[string]bool{"the": true, "labour": true, "market": true}
	f := func(seed int64) bool {
		out := m.Generate(rand.New(rand.NewSource(seed)), 10, 1.0, func(_, c string) bool { return allowed[c] })
		for _, tok := range out {
			if !allowed[tok] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Corrupt never panics and output tokens come from input ∪
// fabrications.
func TestCorruptClosedWorldProperty(t *testing.T) {
	f := func(seed int64, rate float64) bool {
		rate = math.Abs(math.Mod(rate, 1))
		ch := Channel{HallucinationRate: rate, Fabrications: []string{"f1", "f2"}}
		in := []string{"a", "b", "c", "d"}
		out := ch.Corrupt(rand.New(rand.NewSource(seed)), in)
		ok := map[string]bool{"a": true, "b": true, "c": true, "d": true, "f1": true, "f2": true}
		for _, tok := range out {
			if !ok[tok] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDetokenize(t *testing.T) {
	if got := Detokenize([]string{"a", "b"}); got != "a b" {
		t.Errorf("detokenize = %q", got)
	}
	if got := Detokenize(nil); got != "" {
		t.Errorf("empty detokenize = %q", got)
	}
	if !strings.Contains(Detokenize([]string{"SELECT", "*"}), "SELECT") {
		t.Error("missing token")
	}
}
