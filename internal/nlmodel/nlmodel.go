// Package nlmodel implements the deterministic simulated language
// model that substitutes for a hosted LLM (see DESIGN.md §2). It
// provides the failure modes and control surfaces the paper's
// architecture is designed around, without any network dependency:
//
//   - an n-gram language model (bigram, add-one smoothed) for natural
//     language generation with temperature sampling and token-level
//     constrained decoding (the paper's "constrained decoding and
//     parsing" soundness mechanism);
//   - a noisy channel that corrupts structured token sequences with a
//     configurable hallucination rate — the stand-in for an LLM
//     emitting plausible-but-wrong identifiers;
//   - a raw confidence generator that is deliberately miscalibrated
//     (overconfident), reproducing the paper's observation that "when
//     relying solely on an LLM, confidence scores may not accurately
//     reflect the true probability of correctness";
//   - self-consistency sampling (consistency-based black-box
//     uncertainty quantification, ref [7] in the paper).
//
// All randomness flows from explicit seeds so experiments reproduce
// bit-for-bit.
package nlmodel

import (
	"math"
	"math/rand"
	"sort"
	"strings"
)

// EOS terminates generated sequences.
const EOS = "</s>"

// BOS starts generated sequences.
const BOS = "<s>"

// NGram is a bigram language model with add-one smoothing.
type NGram struct {
	counts map[string]map[string]int
	totals map[string]int
	vocab  []string
	vset   map[string]struct{}
}

// NewNGram creates an untrained model.
func NewNGram() *NGram {
	return &NGram{
		counts: make(map[string]map[string]int),
		totals: make(map[string]int),
		vset:   make(map[string]struct{}),
	}
}

// Train adds token sequences to the model. Sequences are implicitly
// wrapped in BOS/EOS.
func (m *NGram) Train(corpus [][]string) {
	for _, seq := range corpus {
		prev := BOS
		for _, tok := range seq {
			m.observe(prev, tok)
			prev = tok
		}
		m.observe(prev, EOS)
	}
}

func (m *NGram) observe(prev, tok string) {
	if m.counts[prev] == nil {
		m.counts[prev] = make(map[string]int)
	}
	m.counts[prev][tok]++
	m.totals[prev]++
	for _, t := range []string{prev, tok} {
		if t == BOS {
			continue
		}
		if _, ok := m.vset[t]; !ok {
			m.vset[t] = struct{}{}
			m.vocab = append(m.vocab, t)
		}
	}
	sort.Strings(m.vocab)
}

// Vocab returns the sorted vocabulary (including EOS, excluding BOS).
func (m *NGram) Vocab() []string { return m.vocab }

// Prob returns the add-one-smoothed probability P(tok | prev).
func (m *NGram) Prob(prev, tok string) float64 {
	v := len(m.vocab)
	if v == 0 {
		return 0
	}
	return (float64(m.counts[prev][tok]) + 1) / (float64(m.totals[prev]) + float64(v))
}

// Perplexity computes the per-token perplexity of a sequence under
// the model (lower = more fluent). Infinite for an untrained model.
func (m *NGram) Perplexity(seq []string) float64 {
	if len(m.vocab) == 0 {
		return math.Inf(1)
	}
	var logSum float64
	n := 0
	prev := BOS
	for _, tok := range append(append([]string{}, seq...), EOS) {
		logSum += math.Log(m.Prob(prev, tok))
		n++
		prev = tok
	}
	return math.Exp(-logSum / float64(n))
}

// Constraint masks candidate next tokens during constrained decoding.
// Returning false removes the token from the distribution.
type Constraint func(prev string, candidate string) bool

// Generate samples up to maxTokens tokens autoregressively, applying
// the optional constraint at each step and renormalizing. Generation
// stops at EOS. Temperature < 1 sharpens, > 1 flattens. A nil rng or
// empty model returns nil.
func (m *NGram) Generate(rng *rand.Rand, maxTokens int, temperature float64, constraint Constraint) []string {
	if rng == nil || len(m.vocab) == 0 || maxTokens <= 0 {
		return nil
	}
	if temperature <= 0 {
		temperature = 1e-3
	}
	var out []string
	prev := BOS
	for len(out) < maxTokens {
		tok, ok := m.sampleNext(rng, prev, temperature, constraint)
		if !ok || tok == EOS {
			break
		}
		out = append(out, tok)
		prev = tok
	}
	return out
}

func (m *NGram) sampleNext(rng *rand.Rand, prev string, temperature float64, constraint Constraint) (string, bool) {
	type cand struct {
		tok string
		w   float64
	}
	cands := make([]cand, 0, len(m.vocab))
	var total float64
	for _, tok := range m.vocab {
		if constraint != nil && tok != EOS && !constraint(prev, tok) {
			continue
		}
		w := math.Pow(m.Prob(prev, tok), 1/temperature)
		cands = append(cands, cand{tok, w})
		total += w
	}
	if len(cands) == 0 || total == 0 {
		return "", false
	}
	r := rng.Float64() * total
	for _, c := range cands {
		r -= c.w
		if r <= 0 {
			return c.tok, true
		}
	}
	return cands[len(cands)-1].tok, true
}

// Channel is the noisy structured-output channel: it corrupts token
// sequences the way an unconstrained LLM corrupts SQL — substituting
// plausible identifiers, dropping tokens, or injecting fabricated
// ones.
type Channel struct {
	// HallucinationRate is the per-token probability of corruption.
	HallucinationRate float64
	// Fabrications is the pool of plausible-but-wrong tokens the
	// channel may substitute (e.g. column names from other schemas).
	Fabrications []string
}

// Corrupt returns a (possibly) corrupted copy of the sequence using
// the provided seeded RNG. Corruption modes per corrupted token:
// substitution from Fabrications (60%), token drop (20%), duplication
// (20%). The input is never mutated.
func (c Channel) Corrupt(rng *rand.Rand, seq []string) []string {
	out := make([]string, 0, len(seq))
	for _, tok := range seq {
		if rng.Float64() >= c.HallucinationRate {
			out = append(out, tok)
			continue
		}
		switch mode := rng.Float64(); {
		case mode < 0.6 && len(c.Fabrications) > 0:
			out = append(out, c.Fabrications[rng.Intn(len(c.Fabrications))])
		case mode < 0.8:
			// drop
		default:
			out = append(out, tok, tok)
		}
	}
	return out
}

// RawConfidence models the miscalibrated self-reported confidence of
// a generation-only system: a high base value with small noise,
// independent of actual correctness.
type RawConfidence struct {
	Base  float64 // e.g. 0.9
	Noise float64 // e.g. 0.05
}

// Score draws one confidence value in [0,1].
func (r RawConfidence) Score(rng *rand.Rand) float64 {
	v := r.Base + r.Noise*rng.NormFloat64()
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// SelfConsistency runs sample() m times and returns the modal output
// with its agreement fraction — the consistency-based black-box UQ
// the paper cites: answers the model produces stably are likelier
// correct than one-off generations.
func SelfConsistency(m int, sample func(i int) string) (answer string, agreement float64) {
	if m <= 0 {
		return "", 0
	}
	counts := make(map[string]int, m)
	for i := 0; i < m; i++ {
		counts[sample(i)]++
	}
	best, bestN := "", 0
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic tie-break
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best, float64(bestN) / float64(m)
}

// Detokenize joins tokens with spaces, collapsing runs of whitespace.
func Detokenize(tokens []string) string {
	return strings.Join(tokens, " ")
}
