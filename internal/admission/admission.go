// Package admission is the server's overload-protection layer: it
// decides, before any work is done, whether a request may enter the
// system. Each session-store shard gets its own gate with two
// independent brakes:
//
//   - a bounded inflight count, so one hot shard cannot queue
//     unboundedly while its sessions serialize on their turn locks;
//   - a token bucket refilled on the injectable resilience.Clock, so
//     sustained arrival rates above the configured budget are shed
//     early instead of growing latency without bound.
//
// A rejected request carries a Retry-After hint, which the server
// surfaces as HTTP 429 + Retry-After — the graceful-degradation
// stance of the resilience layer applied to load: an overloaded shard
// says "come back in a moment" instead of timing out silently, and
// requests that were already admitted run to completion untouched.
//
// Everything is deterministic under a resilience.VirtualClock: tests
// advance time explicitly and observe exact shed/admit decisions.
package admission

import (
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/reliable-cda/cda/internal/resilience"
)

// Config shapes the controller.
type Config struct {
	// Shards is the number of independent gates; align it with the
	// session store's shard count (default 8, rounded up to a power of
	// two like the store).
	Shards int
	// MaxInflight bounds concurrently admitted requests per shard
	// (default 64; negative disables the bound).
	MaxInflight int
	// Rate is the sustained admission budget per shard in requests
	// per second on the clock; 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket capacity (default max(Rate, 1)).
	Burst float64
	// RetryAfterHint is the Retry-After floor used when the inflight
	// bound rejects a request (default 1s): concurrency has no natural
	// refill time, so the hint stands in — unless the token bucket is
	// also empty, in which case its computed refill time wins when
	// longer. Token-bucket rejections never use the hint; their
	// Retry-After is always the exact refill time on the clock.
	RetryAfterHint time.Duration
	// Clock drives bucket refill; nil defaults to a VirtualClock
	// (deterministic). Production passes resilience.NewWallClock().
	Clock resilience.Clock
}

func (cfg Config) withDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	cfg.Shards = n
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 64
	}
	if cfg.Burst <= 0 {
		cfg.Burst = math.Max(cfg.Rate, 1)
	}
	if cfg.RetryAfterHint <= 0 {
		cfg.RetryAfterHint = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = resilience.NewVirtualClock()
	}
	return cfg
}

// Overload is the shed decision: the request was NOT admitted and the
// client should retry no sooner than RetryAfter.
type Overload struct {
	// Shard is the gate that shed the request.
	Shard int
	// Reason is "inflight" (concurrency bound) or "rate" (token
	// bucket empty).
	Reason string
	// RetryAfter is the suggested wait before retrying. For "rate" it
	// is always the exact bucket refill time on the controller's
	// clock; for "inflight" it is the configured hint, raised to the
	// refill time when the bucket is simultaneously empty (retrying
	// sooner would trade a concurrency rejection for a rate one).
	RetryAfter time.Duration
	// Computed reports whether RetryAfter came from bucket refill
	// arithmetic rather than the static RetryAfterHint.
	Computed bool
}

// Error renders the shed decision.
func (o *Overload) Error() string {
	return fmt.Sprintf("admission: shard %d overloaded (%s), retry after %s",
		o.Shard, o.Reason, o.RetryAfter)
}

// Controller gates admission per shard. Safe for concurrent use.
type Controller struct {
	cfg   Config
	clock resilience.Clock
	gates []*gate
}

type gate struct {
	mu       sync.Mutex
	inflight int
	tokens   float64
	last     time.Duration
}

// New builds a controller.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, clock: cfg.Clock, gates: make([]*gate, cfg.Shards)}
	for i := range c.gates {
		c.gates[i] = &gate{tokens: cfg.Burst}
	}
	return c
}

// Shards reports the gate count.
func (c *Controller) Shards() int { return len(c.gates) }

// Admit asks shard's gate for entry. On success it returns a release
// function the caller MUST invoke when the request finishes (it is
// idempotent). On overload it returns a *Overload error and the
// request must not proceed — nothing was consumed except one token
// check, so shedding is O(1) regardless of load.
func (c *Controller) Admit(shard int) (func(), error) {
	g := c.gates[shard&(len(c.gates)-1)]
	g.mu.Lock()
	defer g.mu.Unlock()
	if c.cfg.Rate > 0 {
		now := c.clock.Now()
		g.tokens = math.Min(c.cfg.Burst, g.tokens+c.cfg.Rate*(now-g.last).Seconds())
		g.last = now
	}
	if c.cfg.MaxInflight > 0 && g.inflight >= c.cfg.MaxInflight {
		ov := &Overload{Shard: shard, Reason: "inflight", RetryAfter: c.cfg.RetryAfterHint}
		if c.cfg.Rate > 0 && g.tokens < 1 {
			if wait := refillWait(g.tokens, c.cfg.Rate); wait > ov.RetryAfter {
				ov.RetryAfter = wait
				ov.Computed = true
			}
		}
		return nil, ov
	}
	if c.cfg.Rate > 0 {
		if g.tokens < 1 {
			return nil, &Overload{Shard: shard, Reason: "rate",
				RetryAfter: refillWait(g.tokens, c.cfg.Rate), Computed: true}
		}
		g.tokens--
	}
	g.inflight++
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.inflight--
			g.mu.Unlock()
		})
	}, nil
}

// refillWait computes how long the bucket needs on the clock to
// refill back to one token — the exact earliest instant a retry could
// be admitted by the rate brake (minimum 1ms so the hint is never
// zero under float truncation).
func refillWait(tokens, rate float64) time.Duration {
	wait := time.Duration((1 - tokens) / rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Millisecond
	}
	return wait
}

// Inflight reports a shard's currently admitted request count
// (observability and tests).
func (c *Controller) Inflight(shard int) int {
	g := c.gates[shard&(len(c.gates)-1)]
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}

// RetryAfterSeconds renders a Retry-After duration as the
// whole-seconds string HTTP requires, rounding up so clients never
// retry early (minimum "1").
func RetryAfterSeconds(d time.Duration) string {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return fmt.Sprintf("%d", s)
}
