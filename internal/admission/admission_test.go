package admission

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/reliable-cda/cda/internal/resilience"
)

func TestInflightBound(t *testing.T) {
	c := New(Config{Shards: 1, MaxInflight: 2})
	rel1, err := c.Admit(0)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := c.Admit(0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Admit(0)
	var ov *Overload
	if !errors.As(err, &ov) {
		t.Fatalf("third admit = %v, want *Overload", err)
	}
	if ov.Reason != "inflight" || ov.RetryAfter <= 0 {
		t.Fatalf("overload = %+v", ov)
	}
	// Already-admitted work completes and frees its slot.
	rel1()
	rel1() // idempotent
	if got := c.Inflight(0); got != 1 {
		t.Fatalf("inflight after release = %d", got)
	}
	rel3, err := c.Admit(0)
	if err != nil {
		t.Fatalf("admit after release = %v", err)
	}
	rel3()
	rel2()
	if got := c.Inflight(0); got != 0 {
		t.Fatalf("inflight after all releases = %d", got)
	}
}

func TestTokenBucketOnVirtualClock(t *testing.T) {
	clock := resilience.NewVirtualClock()
	c := New(Config{Shards: 1, Rate: 2, Burst: 1, Clock: clock})
	rel, err := c.Admit(0)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	// Bucket empty: the shed decision names the refill time exactly
	// (rate 2/s -> half a second per token).
	_, err = c.Admit(0)
	var ov *Overload
	if !errors.As(err, &ov) {
		t.Fatalf("admit on empty bucket = %v", err)
	}
	if ov.Reason != "rate" || ov.RetryAfter != 500*time.Millisecond {
		t.Fatalf("overload = %+v, want rate / 500ms", ov)
	}
	clock.Advance(250 * time.Millisecond)
	if _, err := c.Admit(0); err == nil {
		t.Fatal("quarter-second refill must not admit at rate 2/s")
	}
	clock.Advance(250 * time.Millisecond)
	rel2, err := c.Admit(0)
	if err != nil {
		t.Fatalf("admit after full refill = %v", err)
	}
	rel2()
	// Burst caps accumulation: a long idle period buys Burst tokens,
	// not unlimited ones.
	clock.Advance(time.Hour)
	rel3, err := c.Admit(0)
	if err != nil {
		t.Fatal(err)
	}
	rel3()
	if _, err := c.Admit(0); err == nil {
		t.Fatal("burst=1 must not bank more than one token")
	}
}

func TestShardsIndependent(t *testing.T) {
	c := New(Config{Shards: 4, MaxInflight: 1})
	rel, err := c.Admit(0)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := c.Admit(0); err == nil {
		t.Fatal("shard 0 must be full")
	}
	for shard := 1; shard < 4; shard++ {
		r, err := c.Admit(shard)
		if err != nil {
			t.Fatalf("shard %d rejected while only shard 0 is loaded: %v", shard, err)
		}
		r()
	}
}

func TestDefaultsAndRounding(t *testing.T) {
	c := New(Config{Shards: 5})
	if c.Shards() != 8 {
		t.Fatalf("shards = %d, want 8", c.Shards())
	}
	// Out-of-range shard indexes mask into range rather than panic.
	rel, err := c.Admit(1337)
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{10 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{30 * time.Second, "30"},
	}
	for _, tc := range cases {
		if got := RetryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("RetryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestConcurrentAdmitNeverExceedsBound(t *testing.T) {
	const bound = 4
	c := New(Config{Shards: 1, MaxInflight: bound})
	var wg sync.WaitGroup
	var mu sync.Mutex
	peak := 0
	held := 0
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rel, err := c.Admit(0)
				if err != nil {
					continue
				}
				mu.Lock()
				held++
				if held > peak {
					peak = held
				}
				mu.Unlock()
				mu.Lock()
				held--
				mu.Unlock()
				rel()
			}
		}()
	}
	wg.Wait()
	if peak > bound {
		t.Fatalf("observed %d concurrent admissions, bound %d", peak, bound)
	}
	if got := c.Inflight(0); got != 0 {
		t.Fatalf("inflight leaked: %d", got)
	}
}

// TestRetryAfterComputedFromRefill pins the shed hint arithmetic: a
// token-bucket rejection's Retry-After is always the exact refill
// time on the injectable clock — never the static RetryAfterHint —
// including for slow rates where the flat 1s default would tell
// clients to hammer a bucket that cannot possibly have refilled.
func TestRetryAfterComputedFromRefill(t *testing.T) {
	clock := resilience.NewVirtualClock()
	c := New(Config{Shards: 1, Rate: 0.25, Burst: 1, Clock: clock})
	rel, err := c.Admit(0)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	var ov *Overload
	if _, err := c.Admit(0); !errors.As(err, &ov) {
		t.Fatalf("admit on empty bucket = %v", err)
	}
	// Rate 0.25/s: one token takes 4s, not the 1s hint.
	if ov.Reason != "rate" || ov.RetryAfter != 4*time.Second || !ov.Computed {
		t.Fatalf("overload = %+v, want computed rate / 4s", ov)
	}
	// A partial refill shortens the hint by exactly the elapsed time.
	clock.Advance(1500 * time.Millisecond)
	if _, err := c.Admit(0); !errors.As(err, &ov) {
		t.Fatal("bucket refilled too early")
	}
	if ov.RetryAfter != 2500*time.Millisecond || !ov.Computed {
		t.Fatalf("partial-refill overload = %+v, want computed 2.5s", ov)
	}
}

// TestInflightRetryAfterRaisedByEmptyBucket: an inflight rejection
// keeps the static hint when only concurrency is exhausted, but when
// the token bucket is simultaneously empty the computed refill time
// wins if longer — retrying at the hint would just convert the
// rejection into a rate shed.
func TestInflightRetryAfterRaisedByEmptyBucket(t *testing.T) {
	clock := resilience.NewVirtualClock()
	c := New(Config{Shards: 1, MaxInflight: 1, Rate: 0.5, Burst: 1, Clock: clock})
	rel, err := c.Admit(0) // occupies the slot AND drains the bucket
	if err != nil {
		t.Fatal(err)
	}
	var ov *Overload
	if _, err := c.Admit(0); !errors.As(err, &ov) {
		t.Fatalf("admit on full shard = %v", err)
	}
	if ov.Reason != "inflight" || ov.RetryAfter != 2*time.Second || !ov.Computed {
		t.Fatalf("overload = %+v, want inflight raised to computed 2s", ov)
	}
	// With the bucket full again, the static hint stands.
	clock.Advance(2 * time.Second)
	if _, err := c.Admit(0); !errors.As(err, &ov) {
		t.Fatal("still rejected?")
	}
	if ov.Reason != "inflight" || ov.RetryAfter != time.Second || ov.Computed {
		t.Fatalf("overload = %+v, want static 1s hint", ov)
	}
	rel()
}
