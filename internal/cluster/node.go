package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/dialogue"
	"github.com/reliable-cda/cda/internal/server"
	"github.com/reliable-cda/cda/internal/sessionstore"
	"github.com/reliable-cda/cda/internal/vstore"
)

// ErrNodeDown marks a node-level failure: the process is gone,
// partitioned away, or refusing connections — as opposed to an
// application error (unknown session, bad question) the node itself
// produced while healthy. The router's failover breaker counts only
// wrapped ErrNodeDown failures; application errors pass through
// without tripping promotion.
var ErrNodeDown = errors.New("cluster: node unreachable")

// ErrUnknownSession is the node-level 404: the id was never created
// on (or replicated to) that node.
var ErrUnknownSession = errors.New("cluster: unknown session")

// NodeClient is one cdaserver process as the router sees it. The two
// implementations are LocalNode (in-process, for tests and the chaos
// harness — with kill and partition switches) and HTTPNode (a real
// node over its base URL, for cmd/cdarouter).
type NodeClient interface {
	// Name identifies the node in health reports and stale stamps.
	Name() string
	// Shards is the node's store shard count (placement protocol).
	Shards() int
	// CreateSession creates a session under the router-chosen id.
	CreateSession(ctx context.Context, id string) error
	// Ask runs one turn against a session and commits it durably.
	Ask(ctx context.Context, id, question string) (server.AskResponse, error)
	// Transcript reads one page of a session's transcript. A node whose
	// store lags its primary stamps the page stale.
	Transcript(ctx context.Context, id string, offset, limit int) (server.TranscriptPage, error)
	// Health returns the node's replication health report.
	Health(ctx context.Context) (server.HealthReport, error)
	// Pull fetches one shard's committed WAL frames after a cursor.
	Pull(ctx context.Context, shard int, after int64, max int) (sessionstore.ShipBatch, error)
	// Apply installs a pulled batch, returning the shard's new cursor.
	Apply(ctx context.Context, batch sessionstore.ShipBatch) (int64, error)
	// WantChunks lists up to limit chunks missing from the node's
	// version store under the given root — the replica-side half of
	// catch-up negotiation.
	WantChunks(ctx context.Context, root string, limit int) ([]string, error)
	// FetchChunks serves chunk packets by hash from the node's version
	// store — the primary-side half.
	FetchChunks(ctx context.Context, hashes []string) ([]vstore.Packet, error)
	// PutChunks stores shipped packets into the node's version store
	// (each re-hashed on receipt).
	PutChunks(ctx context.Context, packets []vstore.Packet) error
}

// ErrNoVersionStore marks chunk-negotiation calls against a node
// whose store has no version store configured.
var ErrNoVersionStore = errors.New("cluster: node has no version store")

// LocalNode is an in-process node: a store plus the system that
// answers its questions, with the failure switches the chaos harness
// flips. All methods honour context cancellation and report
// ErrNodeDown once killed or while partitioned.
type LocalNode struct {
	name  string
	store *sessionstore.Store
	sys   *core.System

	mu          sync.Mutex
	killed      bool
	partitioned bool
}

// NewLocalNode wraps a store and system as a node.
func NewLocalNode(name string, store *sessionstore.Store, sys *core.System) *LocalNode {
	return &LocalNode{name: name, store: store, sys: sys}
}

// Kill marks the node dead — permanently, like a crashed process. A
// torn WAL write inside Ask kills the node implicitly the same way.
func (n *LocalNode) Kill() {
	n.mu.Lock()
	n.killed = true
	n.mu.Unlock()
}

// SetPartitioned isolates the node from the router (reversible,
// unlike Kill): every call fails with ErrNodeDown until healed.
func (n *LocalNode) SetPartitioned(p bool) {
	n.mu.Lock()
	n.partitioned = p
	n.mu.Unlock()
}

// Store exposes the node's store (chaos assertions).
func (n *LocalNode) Store() *sessionstore.Store { return n.store }

// reachable folds the kill/partition switches and the context into
// one gate every method passes first.
func (n *LocalNode) reachable(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.killed {
		return fmt.Errorf("%w: %s killed", ErrNodeDown, n.name)
	}
	if n.partitioned {
		return fmt.Errorf("%w: %s partitioned", ErrNodeDown, n.name)
	}
	return nil
}

// noteCrash converts a store-level simulated crash into node death:
// the WAL append was torn mid-write, which in a real deployment is
// the process dying with it.
func (n *LocalNode) noteCrash(err error) error {
	if errors.Is(err, sessionstore.ErrCrashed) {
		n.Kill()
		return fmt.Errorf("%w: %s crashed mid-append", ErrNodeDown, n.name)
	}
	return err
}

// Name implements NodeClient.
func (n *LocalNode) Name() string { return n.name }

// Shards implements NodeClient.
func (n *LocalNode) Shards() int { return n.store.Shards() }

// CreateSession implements NodeClient.
func (n *LocalNode) CreateSession(ctx context.Context, id string) error {
	if err := n.reachable(ctx); err != nil {
		return err
	}
	if _, err := n.store.NewSessionWithID(id); err != nil {
		return n.noteCrash(err)
	}
	return nil
}

// Ask implements NodeClient: one turn, committed durably before the
// answer is returned (the single-node server's contract).
func (n *LocalNode) Ask(ctx context.Context, id, question string) (server.AskResponse, error) {
	// resp stays the zero value on every error path; the annotated
	// response only comes from AskResponseFrom on success.
	var resp server.AskResponse
	if err := n.reachable(ctx); err != nil {
		return resp, err
	}
	entry, status := n.store.Get(id)
	if status != sessionstore.Found {
		return resp, fmt.Errorf("%w: %s on node %s (%v)", ErrUnknownSession, id, n.name, status)
	}
	err := entry.Do(func(sess *dialogue.Session) error {
		ans, rerr := n.sys.Respond(ctx, sess, question)
		if rerr != nil {
			return rerr
		}
		resp = server.AskResponseFrom(ans)
		return n.store.CommitTurn(entry)
	})
	if err != nil {
		// Not resp: AskResponseFrom may have run before CommitTurn
		// failed, and an uncommitted turn must not leak a response.
		var zero server.AskResponse
		return zero, n.noteCrash(err)
	}
	return resp, nil
}

// Transcript implements NodeClient, rendering the same page the HTTP
// handler would — staleness stamp included, so a replica read through
// the router degrades exactly like one through a node's own endpoint.
func (n *LocalNode) Transcript(ctx context.Context, id string, offset, limit int) (server.TranscriptPage, error) {
	if err := n.reachable(ctx); err != nil {
		return server.TranscriptPage{}, err
	}
	if limit <= 0 {
		limit = server.DefaultPageLimit
	}
	if limit > server.MaxPageLimit {
		limit = server.MaxPageLimit
	}
	entry, status := n.store.Get(id)
	if status != sessionstore.Found {
		return server.TranscriptPage{}, fmt.Errorf("%w: %s on node %s (%v)", ErrUnknownSession, id, n.name, status)
	}
	page := server.TranscriptPage{Offset: offset, Limit: limit, Turns: []server.TranscriptTurn{}}
	if lag := n.store.ReplicationLag(n.store.ShardIndex(id)); lag > 0 {
		page.Source = n.name
		page.Stale = true
		page.LagRecords = lag
	}
	err := entry.Do(func(sess *dialogue.Session) error {
		page.Total = len(sess.Turns)
		end := offset + limit
		if end > page.Total {
			end = page.Total
		}
		for i := offset; i < end && i >= 0; i++ {
			t := sess.Turns[i]
			tt := server.TranscriptTurn{Role: t.Role.String(), Text: t.Text, Confidence: t.Confidence}
			if t.Role == dialogue.RoleUser {
				tt.Intent = t.Intent.String()
			}
			page.Turns = append(page.Turns, tt)
		}
		return nil
	})
	if err != nil {
		return server.TranscriptPage{}, err
	}
	return page, nil
}

// Health implements NodeClient.
func (n *LocalNode) Health(ctx context.Context) (server.HealthReport, error) {
	if err := n.reachable(ctx); err != nil {
		return server.HealthReport{}, err
	}
	rep := server.HealthReport{Status: "ok", Node: n.name, Sessions: n.store.Len()}
	for i := 0; i < n.store.Shards(); i++ {
		h := server.ShardHealth{Shard: i,
			WALSeq: n.store.ReplicationCursor(i),
			Lag:    n.store.ReplicationLag(i)}
		if h.Lag > rep.MaxLag {
			rep.MaxLag = h.Lag
		}
		rep.Shards = append(rep.Shards, h)
	}
	return rep, nil
}

// Pull implements NodeClient.
func (n *LocalNode) Pull(ctx context.Context, shard int, after int64, max int) (sessionstore.ShipBatch, error) {
	if err := n.reachable(ctx); err != nil {
		return sessionstore.ShipBatch{}, err
	}
	return n.store.PullFrames(shard, after, max)
}

// Apply implements NodeClient.
func (n *LocalNode) Apply(ctx context.Context, batch sessionstore.ShipBatch) (int64, error) {
	if err := n.reachable(ctx); err != nil {
		return 0, err
	}
	if err := n.store.ApplyBatch(batch); err != nil {
		return n.store.ReplicationCursor(batch.Shard), n.noteCrash(err)
	}
	return n.store.ReplicationCursor(batch.Shard), nil
}

// versions returns the node's version store or ErrNoVersionStore.
func (n *LocalNode) versions() (*vstore.Store, error) {
	vs := n.store.Versions()
	if vs == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoVersionStore, n.name)
	}
	return vs, nil
}

// WantChunks implements NodeClient.
func (n *LocalNode) WantChunks(ctx context.Context, root string, limit int) ([]string, error) {
	if err := n.reachable(ctx); err != nil {
		return nil, err
	}
	vs, err := n.versions()
	if err != nil {
		return nil, err
	}
	missing := vs.WantList(vstore.Hash(root), limit)
	out := make([]string, 0, len(missing))
	for _, h := range missing {
		out = append(out, string(h))
	}
	return out, nil
}

// FetchChunks implements NodeClient.
func (n *LocalNode) FetchChunks(ctx context.Context, hashes []string) ([]vstore.Packet, error) {
	if err := n.reachable(ctx); err != nil {
		return nil, err
	}
	vs, err := n.versions()
	if err != nil {
		return nil, err
	}
	hs := make([]vstore.Hash, 0, len(hashes))
	for _, h := range hashes {
		hs = append(hs, vstore.Hash(h))
	}
	return vs.Packets(hs)
}

// PutChunks implements NodeClient.
func (n *LocalNode) PutChunks(ctx context.Context, packets []vstore.Packet) error {
	if err := n.reachable(ctx); err != nil {
		return err
	}
	vs, err := n.versions()
	if err != nil {
		return err
	}
	return vs.AddPackets(packets)
}
