package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"github.com/reliable-cda/cda/internal/server"
	"github.com/reliable-cda/cda/internal/sessionstore"
	"github.com/reliable-cda/cda/internal/vstore"
)

// HTTPNode is a NodeClient over a real cdaserver's base URL — the
// implementation cmd/cdarouter wires in. Transport-level failures
// (connection refused, reset, timeout) wrap ErrNodeDown so the
// router's failover breaker sees them; HTTP-level application errors
// (404, 409, 400) do not, because a node that answers 404 is alive.
type HTTPNode struct {
	name   string
	base   string
	shards int
	client *http.Client
}

// NewHTTPNode builds a client for the node at base (e.g.
// "http://127.0.0.1:8081"). shards is the node's store shard count —
// the operator-configured placement constant every node and router
// must agree on. A nil client uses http.DefaultClient.
func NewHTTPNode(name, base string, shards int, client *http.Client) *HTTPNode {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPNode{name: name, base: strings.TrimRight(base, "/"), shards: shards, client: client}
}

// Name implements NodeClient.
func (n *HTTPNode) Name() string { return n.name }

// Shards implements NodeClient.
func (n *HTTPNode) Shards() int { return n.shards }

// do runs one request, decoding a 2xx JSON body into out (skipped
// when out is nil) and folding every other outcome into an error.
func (n *HTTPNode) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("cluster: encode request to %s: %w", n.name, err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, n.base+path, rd)
	if err != nil {
		return fmt.Errorf("cluster: build request to %s: %w", n.name, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := n.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("%w: %s: %v", ErrNodeDown, n.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			_, err := io.Copy(io.Discard, resp.Body)
			return err
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("cluster: decode response from %s: %w", n.name, err)
		}
		return nil
	}
	var apiErr struct {
		Error string `json:"error"`
		// MissingRoot rides on a 428 from /replication/apply: the
		// versioned snapshot whose chunks must be negotiated first.
		MissingRoot string `json:"missing_root"`
	}
	msg := resp.Status
	if derr := json.NewDecoder(resp.Body).Decode(&apiErr); derr == nil && apiErr.Error != "" {
		msg = fmt.Sprintf("%s: %s", resp.Status, apiErr.Error)
	}
	switch resp.StatusCode {
	case http.StatusNotFound, http.StatusGone:
		return fmt.Errorf("%w: node %s: %s", ErrUnknownSession, n.name, msg)
	case http.StatusConflict:
		return fmt.Errorf("cluster: node %s conflict: %s", n.name, msg)
	case http.StatusPreconditionRequired:
		if apiErr.MissingRoot != "" {
			// Typed so the router's errors.As negotiation path fires for
			// HTTP nodes exactly as for in-process ones.
			return &sessionstore.MissingChunksError{Root: vstore.Hash(apiErr.MissingRoot)}
		}
		return fmt.Errorf("cluster: node %s: %s", n.name, msg)
	default:
		return fmt.Errorf("cluster: node %s: %s", n.name, msg)
	}
}

// CreateSession implements NodeClient.
func (n *HTTPNode) CreateSession(ctx context.Context, id string) error {
	return n.do(ctx, http.MethodPost, "/sessions", map[string]string{"id": id}, nil)
}

// Ask implements NodeClient.
func (n *HTTPNode) Ask(ctx context.Context, id, question string) (server.AskResponse, error) {
	var resp server.AskResponse
	err := n.do(ctx, http.MethodPost, "/sessions/"+url.PathEscape(id)+"/ask",
		server.AskRequest{Question: question}, &resp)
	return resp, err
}

// Transcript implements NodeClient. Zero offset/limit are omitted
// from the query so the node applies its own defaults (the server
// rejects an explicit limit=0).
func (n *HTTPNode) Transcript(ctx context.Context, id string, offset, limit int) (server.TranscriptPage, error) {
	var page server.TranscriptPage
	q := url.Values{}
	if offset > 0 {
		q.Set("offset", fmt.Sprint(offset))
	}
	if limit > 0 {
		q.Set("limit", fmt.Sprint(limit))
	}
	path := "/sessions/" + url.PathEscape(id)
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	err := n.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// Health implements NodeClient.
func (n *HTTPNode) Health(ctx context.Context) (server.HealthReport, error) {
	var rep server.HealthReport
	err := n.do(ctx, http.MethodGet, "/healthz", nil, &rep)
	return rep, err
}

// Pull implements NodeClient.
func (n *HTTPNode) Pull(ctx context.Context, shard int, after int64, max int) (sessionstore.ShipBatch, error) {
	var batch sessionstore.ShipBatch
	path := fmt.Sprintf("/replication/%d?after=%d&max=%d", shard, after, max)
	err := n.do(ctx, http.MethodGet, path, nil, &batch)
	return batch, err
}

// Apply implements NodeClient. A gap conflict still returns the
// replica's cursor (the apply endpoint carries it in the 409 body) so
// the shipper can re-pull without a health round trip.
func (n *HTTPNode) Apply(ctx context.Context, batch sessionstore.ShipBatch) (int64, error) {
	var out struct {
		Cursor int64 `json:"cursor"`
	}
	if err := n.do(ctx, http.MethodPost, "/replication/apply", batch, &out); err != nil {
		return 0, err
	}
	return out.Cursor, nil
}

// WantChunks implements NodeClient.
func (n *HTTPNode) WantChunks(ctx context.Context, root string, limit int) ([]string, error) {
	var out struct {
		Missing []string `json:"missing"`
	}
	err := n.do(ctx, http.MethodPost, "/chunks/want",
		server.WantChunksRequest{Root: root, Limit: limit}, &out)
	return out.Missing, err
}

// FetchChunks implements NodeClient.
func (n *HTTPNode) FetchChunks(ctx context.Context, hashes []string) ([]vstore.Packet, error) {
	var out struct {
		Packets []vstore.Packet `json:"packets"`
	}
	err := n.do(ctx, http.MethodPost, "/chunks/fetch",
		server.FetchChunksRequest{Hashes: hashes}, &out)
	return out.Packets, err
}

// PutChunks implements NodeClient.
func (n *HTTPNode) PutChunks(ctx context.Context, packets []vstore.Packet) error {
	return n.do(ctx, http.MethodPost, "/chunks/put",
		server.PutChunksRequest{Packets: packets}, nil)
}
