package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/reliable-cda/cda/internal/admission"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/server"
	"github.com/reliable-cda/cda/internal/sessionstore"
)

// Member is one ring position: a primary node and the replica that
// shadows it. Replica may be nil (a member with no failover — the
// degenerate single-node deployment).
type Member struct {
	Name    string
	Primary NodeClient
	Replica NodeClient
}

// Config assembles a Router.
type Config struct {
	// Members are the ring members (at least one; names unique).
	Members []Member
	// VNodes is the virtual-node count per member (DefaultVNodes if
	// zero) — placement changes with it, so every router in a
	// deployment must agree.
	VNodes int
	// Clock drives the failover breakers and admission buckets; nil
	// defaults to a VirtualClock (tests). Production passes
	// resilience.NewWallClock().
	Clock resilience.Clock
	// Breaker tunes the per-member failover breaker: consecutive
	// node-level failures of a primary trip it, and a tripped breaker
	// permanently promotes the replica. The zero value takes the
	// resilience defaults (threshold 5).
	Breaker resilience.BreakerConfig
	// ClusterAdmission, when non-nil, gates every request through one
	// cluster-wide token bucket before any routing happens.
	ClusterAdmission *admission.Config
	// NodeAdmission, when non-nil, additionally gates each member with
	// its own admission controller (per-session-shard buckets, exactly
	// the single-node server's admission semantics).
	NodeAdmission *admission.Config
	// ShipMax bounds the frames per replication pull during the
	// synchronous post-write ship and CatchUp (default 64).
	ShipMax int
}

// member is a Member plus its runtime failover state.
type member struct {
	Member
	breaker *resilience.Breaker
	adm     *admission.Controller

	mu       sync.Mutex
	promoted bool
	cursors  map[int]int64 // router's view of the replica's per-shard cursor
	shipErr  error         // most recent replication failure (cleared on success)
}

// active returns the node currently serving the member's traffic.
func (m *member) active() NodeClient {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.promoted {
		return m.Replica
	}
	return m.Primary
}

// isPromoted reports whether failover has happened.
func (m *member) isPromoted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.promoted
}

// Router fronts the ring: it places sessions, admits requests, ships
// WAL frames to replicas after every write, and fails a member over
// to its replica when the primary's breaker trips. Safe for
// concurrent use.
type Router struct {
	ring    *Ring
	clock   resilience.Clock
	members map[string]*member
	names   []string // sorted, for deterministic iteration
	cluster *admission.Controller
	shipMax int
	nextID  atomic.Int64
}

// NewRouter builds a router over the members.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, errors.New("cluster: router needs at least one member")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = resilience.NewVirtualClock()
	}
	names := make([]string, 0, len(cfg.Members))
	members := make(map[string]*member, len(cfg.Members))
	for _, mm := range cfg.Members {
		if mm.Primary == nil {
			return nil, fmt.Errorf("cluster: member %q has no primary", mm.Name)
		}
		if _, dup := members[mm.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate member %q", mm.Name)
		}
		m := &member{
			Member:  mm,
			breaker: resilience.NewBreaker("cluster."+mm.Name, cfg.Breaker, clock),
			cursors: map[int]int64{},
		}
		if cfg.NodeAdmission != nil {
			acfg := *cfg.NodeAdmission
			acfg.Clock = clock
			m.adm = admission.New(acfg)
		}
		members[mm.Name] = m
		names = append(names, mm.Name)
	}
	sort.Strings(names)
	ring, err := NewRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	r := &Router{ring: ring, clock: clock, members: members, names: names,
		shipMax: cfg.ShipMax}
	if r.shipMax <= 0 {
		r.shipMax = 64
	}
	if cfg.ClusterAdmission != nil {
		acfg := *cfg.ClusterAdmission
		acfg.Shards = 1
		acfg.Clock = clock
		r.cluster = admission.New(acfg)
	}
	return r, nil
}

// Ring exposes the placement ring (status endpoints, tests).
func (r *Router) Ring() *Ring { return r.ring }

// route maps a session id to its member.
func (r *Router) route(id string) *member {
	return r.members[r.ring.Owner(id)]
}

// admit passes the request through the cluster-wide bucket and then
// the owning member's per-shard gate, returning a combined release.
// The error, when non-nil, is a *admission.Overload for the caller to
// render as 429 + Retry-After.
func (r *Router) admit(m *member, id string) (func(), error) {
	release := func() {}
	if r.cluster != nil {
		rel, err := r.cluster.Admit(0)
		if err != nil {
			return nil, err
		}
		release = rel
	}
	if m.adm != nil {
		shard := sessionstore.ShardIndexFor(id, m.adm.Shards())
		rel, err := m.adm.Admit(shard)
		if err != nil {
			release()
			return nil, err
		}
		prev := release
		release = func() { prev(); rel() }
	}
	return release, nil
}

// recordOutcome feeds a call's outcome into the member's failover
// breaker. Only node-level failures (ErrNodeDown) count against the
// primary; application errors from a live node are neutral. When the
// breaker opens, the member is promoted — permanently: a primary that
// stopped acking mid-turn cannot be trusted to rejoin without an
// operator resyncing it, so flapping back is never automatic.
func (r *Router) recordOutcome(m *member, err error) {
	if m.isPromoted() {
		return
	}
	switch {
	case err == nil:
		m.breaker.Record(nil)
	case errors.Is(err, ErrNodeDown):
		m.breaker.Record(err)
	default:
		return
	}
	if m.breaker.State() == resilience.StateOpen {
		m.mu.Lock()
		if !m.promoted && m.Replica != nil {
			m.promoted = true
		}
		m.mu.Unlock()
	}
}

// CreateSession allocates a cluster-wide session id, places it on the
// ring, and creates it on the owning member's active node. The id is
// chosen by the router (not the node) so every later request routes
// from the id alone.
func (r *Router) CreateSession(ctx context.Context) (string, error) {
	id := fmt.Sprintf("c%06d", r.nextID.Add(1))
	m := r.route(id)
	release, err := r.admit(m, id)
	if err != nil {
		return "", err
	}
	defer release()
	node := m.active()
	cerr := node.CreateSession(ctx, id)
	r.recordOutcome(m, cerr)
	if cerr != nil {
		return "", fmt.Errorf("cluster: create session on %s: %w", node.Name(), cerr)
	}
	r.shipAfterWrite(ctx, m, id)
	return id, nil
}

// Ask routes one turn to the session's member. A failed ask is NOT
// retried on the replica automatically: the primary may have durably
// committed the turn before dying unacked, and silently re-running it
// on the promoted replica would fork the transcript. The caller
// re-asks (the turn is idempotent at the conversation level) and the
// retry lands on whichever node is active by then.
func (r *Router) Ask(ctx context.Context, id, question string) (server.AskResponse, error) {
	// zero is the empty response for error paths; real responses come
	// annotated from the node.
	var zero server.AskResponse
	m := r.route(id)
	release, err := r.admit(m, id)
	if err != nil {
		return zero, err
	}
	defer release()
	node := m.active()
	resp, aerr := node.Ask(ctx, id, question)
	r.recordOutcome(m, aerr)
	if aerr != nil {
		return zero, fmt.Errorf("cluster: ask on %s: %w", node.Name(), aerr)
	}
	r.shipAfterWrite(ctx, m, id)
	return resp, nil
}

// Transcript reads a session's transcript page. preferReplica sends
// the read to the member's replica (offloading the primary); a stale
// replica stamps the page, and an unreachable one falls back to the
// active node — reads degrade, they don't fail, as long as either
// node answers.
func (r *Router) Transcript(ctx context.Context, id string, offset, limit int, preferReplica bool) (server.TranscriptPage, error) {
	m := r.route(id)
	if preferReplica && m.Replica != nil && !m.isPromoted() {
		page, err := m.Replica.Transcript(ctx, id, offset, limit)
		if err == nil {
			return page, nil
		}
		if !errors.Is(err, ErrNodeDown) {
			return server.TranscriptPage{}, err
		}
		// Replica unreachable: degrade to the primary (unstamped — the
		// primary's page is current by definition).
	}
	node := m.active()
	page, err := node.Transcript(ctx, id, offset, limit)
	r.recordOutcome(m, err)
	if err != nil {
		return server.TranscriptPage{}, fmt.Errorf("cluster: transcript on %s: %w", node.Name(), err)
	}
	return page, nil
}

// shipAfterWrite synchronously ships the written session's shard to
// the member's replica. Failures never fail the write — the turn is
// already durable on the primary — but they are remembered (Status
// surfaces them) and the replica simply lags until CatchUp or the
// next successful ship.
func (r *Router) shipAfterWrite(ctx context.Context, m *member, id string) {
	if m.Replica == nil || m.isPromoted() {
		return
	}
	shard := sessionstore.ShardIndexFor(id, m.Primary.Shards())
	err := r.shipShard(ctx, m, shard)
	m.mu.Lock()
	m.shipErr = err
	m.mu.Unlock()
}

// shipShard pulls frames from the member's primary and applies them
// on its replica until the replica reaches the primary's cursor. A
// gap or cursor drift re-syncs from the replica's authoritative
// cursor (via its health report) once per call.
func (r *Router) shipShard(ctx context.Context, m *member, shard int) error {
	resynced := false
	for {
		m.mu.Lock()
		after := m.cursors[shard]
		m.mu.Unlock()
		batch, err := m.Primary.Pull(ctx, shard, after, r.shipMax)
		if err != nil {
			if resynced {
				return err
			}
			// The router's cursor view may be stale (e.g. a restarted
			// router at cursor 0 with a caught-up replica): re-learn the
			// replica's actual cursor and retry once.
			if rerr := r.resyncCursor(ctx, m, shard); rerr != nil {
				return errors.Join(err, rerr)
			}
			resynced = true
			continue
		}
		if batch.Empty() && batch.PrimaryCursor <= after {
			return nil
		}
		cur, err := m.Replica.Apply(ctx, batch)
		var missing *sessionstore.MissingChunksError
		if errors.As(err, &missing) {
			// The batch ships a versioned snapshot the replica cannot
			// materialize yet: negotiate the missing chunks (replica asks,
			// primary serves, only the delta moves) and re-apply.
			if nerr := r.negotiateChunks(ctx, m, string(missing.Root)); nerr != nil {
				return errors.Join(err, nerr)
			}
			cur, err = m.Replica.Apply(ctx, batch)
		}
		if err != nil {
			if errors.Is(err, ErrNodeDown) || resynced {
				return err
			}
			if rerr := r.resyncCursor(ctx, m, shard); rerr != nil {
				return errors.Join(err, rerr)
			}
			resynced = true
			continue
		}
		m.mu.Lock()
		m.cursors[shard] = cur
		m.mu.Unlock()
		if cur >= batch.PrimaryCursor {
			return nil
		}
	}
}

// chunkBatch bounds one negotiation round trip: the replica names up
// to this many missing chunks, the primary serves them, repeat until
// the want list drains.
const chunkBatch = 64

// negotiateChunks drives have/want chunk transfer for one snapshot
// root: the member's replica lists what it is missing under the root,
// the primary serves those packets, and the loop repeats until the
// replica wants nothing — shipping only the delta, never the chunks
// the replica already holds from earlier catch-ups. A round that
// moves nothing while wants remain aborts (the primary GC'd the root
// mid-transfer or the stores disagree) instead of spinning.
func (r *Router) negotiateChunks(ctx context.Context, m *member, root string) error {
	for {
		want, err := m.Replica.WantChunks(ctx, root, chunkBatch)
		if err != nil {
			return fmt.Errorf("cluster: want list from %s: %w", m.Replica.Name(), err)
		}
		if len(want) == 0 {
			return nil
		}
		packets, err := m.Primary.FetchChunks(ctx, want)
		if err != nil {
			return fmt.Errorf("cluster: fetch %d chunks from %s: %w", len(want), m.Primary.Name(), err)
		}
		if len(packets) == 0 {
			return fmt.Errorf("cluster: primary %s served none of %d wanted chunks under root %s",
				m.Primary.Name(), len(want), root)
		}
		if err := m.Replica.PutChunks(ctx, packets); err != nil {
			return fmt.Errorf("cluster: store %d chunks on %s: %w", len(packets), m.Replica.Name(), err)
		}
	}
}

// resyncCursor refreshes the router's view of the replica's cursor
// for one shard from the replica's own health report.
func (r *Router) resyncCursor(ctx context.Context, m *member, shard int) error {
	rep, err := m.Replica.Health(ctx)
	if err != nil {
		return err
	}
	if shard >= len(rep.Shards) {
		return fmt.Errorf("cluster: replica %s reports %d shards, need shard %d",
			m.Replica.Name(), len(rep.Shards), shard)
	}
	m.mu.Lock()
	m.cursors[shard] = rep.Shards[shard].WALSeq
	m.mu.Unlock()
	return nil
}

// CatchUp ships every shard of one member until its replica matches
// the primary's cursor — the heal path after a partition. maxFrames
// bounds each pull (<=0 takes the router's ShipMax) so tests can step
// a catch-up mid-way.
func (r *Router) CatchUp(ctx context.Context, name string) error {
	m, ok := r.members[name]
	if !ok {
		return fmt.Errorf("cluster: unknown member %q", name)
	}
	if m.Replica == nil || m.isPromoted() {
		return nil
	}
	var errs []error
	for shard := 0; shard < m.Primary.Shards(); shard++ {
		if err := r.shipShard(ctx, m, shard); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", shard, err))
		}
	}
	err := errors.Join(errs...)
	m.mu.Lock()
	m.shipErr = err
	m.mu.Unlock()
	return err
}

// ShipStep performs exactly one bounded pull+apply for one shard of a
// member (maxFrames <= 0 takes ShipMax) and reports whether the
// replica is now caught up — the primitive the partition-heal chaos
// scenario uses to observe a replica mid-catch-up.
func (r *Router) ShipStep(ctx context.Context, name string, shard, maxFrames int) (caughtUp bool, err error) {
	m, ok := r.members[name]
	if !ok {
		return false, fmt.Errorf("cluster: unknown member %q", name)
	}
	if m.Replica == nil {
		return true, nil
	}
	if maxFrames <= 0 {
		maxFrames = r.shipMax
	}
	m.mu.Lock()
	after := m.cursors[shard]
	m.mu.Unlock()
	batch, err := m.Primary.Pull(ctx, shard, after, maxFrames)
	if err != nil {
		return false, err
	}
	if batch.Empty() && batch.PrimaryCursor <= after {
		return true, nil
	}
	cur, err := m.Replica.Apply(ctx, batch)
	var missing *sessionstore.MissingChunksError
	if errors.As(err, &missing) {
		if nerr := r.negotiateChunks(ctx, m, string(missing.Root)); nerr != nil {
			return false, errors.Join(err, nerr)
		}
		cur, err = m.Replica.Apply(ctx, batch)
	}
	if err != nil {
		return false, err
	}
	m.mu.Lock()
	m.cursors[shard] = cur
	m.mu.Unlock()
	return cur >= batch.PrimaryCursor, nil
}

// Probe health-checks every unpromoted primary, feeding the failover
// breakers — the background loop cdarouter runs so a dead primary is
// promoted even when no request traffic is arriving to notice.
func (r *Router) Probe(ctx context.Context) {
	for _, name := range r.names {
		m := r.members[name]
		if m.isPromoted() {
			continue
		}
		_, err := m.Primary.Health(ctx)
		r.recordOutcome(m, err)
	}
}

// MemberStatus is one member's row in the router's health report.
type MemberStatus struct {
	Name     string `json:"name"`
	Active   string `json:"active"`
	Promoted bool   `json:"promoted"`
	Breaker  string `json:"breaker"`
	// ReplicaLag is the replica's own max reported lag (-1 when the
	// replica is unreachable or absent).
	ReplicaLag int64 `json:"replica_lag"`
	// ShipError is the most recent replication failure ("" when the
	// last ship succeeded).
	ShipError string `json:"ship_error,omitempty"`
}

// Status reports every member's failover and replication state,
// sorted by name (deterministic rendering).
func (r *Router) Status(ctx context.Context) []MemberStatus {
	out := make([]MemberStatus, 0, len(r.names))
	for _, name := range r.names {
		m := r.members[name]
		st := MemberStatus{Name: name, Active: m.active().Name(),
			Promoted: m.isPromoted(), Breaker: m.breaker.State().String(), ReplicaLag: -1}
		m.mu.Lock()
		if m.shipErr != nil {
			st.ShipError = m.shipErr.Error()
		}
		m.mu.Unlock()
		if m.Replica != nil && !st.Promoted {
			if rep, err := m.Replica.Health(ctx); err == nil {
				st.ReplicaLag = rep.MaxLag
			}
		}
		out = append(out, st)
	}
	return out
}
