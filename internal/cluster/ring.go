// Package cluster turns N single-node cdaserver processes into one
// logical service: a consistent-hash ring places every session on a
// member, each member is a primary/replica pair kept in sync by
// WAL-frame shipping (internal/sessionstore's replication layer), and
// a router fronts the ring — admitting requests through per-node and
// cluster-wide token buckets, promoting a member's replica when its
// primary stops acking (a circuit breaker on the injectable clock, so
// failover is deterministic in tests), and serving reads from replicas
// with an explicit staleness stamp when they lag.
//
// Everything is seedable and clock-injected: the chaos harness
// (internal/chaos) kills a primary mid-turn or partitions a replica
// and asserts, twice per seed, that the promoted replica serves the
// byte-identical committed transcript and that no committed turn is
// ever lost.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member: enough points
// that removing or adding one member moves only ~1/N of the key space,
// while the ring stays tiny (N*128 points).
const DefaultVNodes = 128

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	hash   uint32
	member string
}

// Ring is a consistent-hash ring over member names. Placement is a
// pure function of (members, vnodes, key) — no construction-order or
// map-iteration dependence — so every router instance in a deployment
// and every run of a seeded test agrees on where a session lives.
type Ring struct {
	points  []ringPoint
	members []string
}

// NewRing builds a ring over the given member names (order
// irrelevant; names must be unique and non-empty). vnodes <= 0 takes
// DefaultVNodes.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	seen := map[string]bool{}
	r := &Ring{members: sorted, points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
		seen[m] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash32(fmt.Sprintf("%s#%d", m, v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (rare but possible at 32 bits) break by name so the
		// ring stays a pure function of its inputs.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the member names in sorted order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owner maps a key (session id) to the member owning it: the first
// virtual node at or clockwise of the key's hash.
func (r *Ring) Owner(key string) string {
	h := hash32(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// hash32 is FNV-1a — the same family the session store shards with,
// chosen here for the same reason: stable across processes and
// platforms, no seed, no allocation.
func hash32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
