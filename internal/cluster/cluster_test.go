package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/reliable-cda/cda/internal/admission"
	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/sessionstore"
	"github.com/reliable-cda/cda/internal/workload"
)

func TestRingDeterministicPlacement(t *testing.T) {
	members := []string{"n2", "n1", "n3"}
	r1, err := NewRing(members, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"n3", "n2", "n1"}, 64) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("c%06d", i)
		o1, o2 := r1.Owner(key), r2.Owner(key)
		if o1 != o2 {
			t.Fatalf("placement differs for %s: %s vs %s", key, o1, o2)
		}
		counts[o1]++
	}
	for _, m := range r1.Members() {
		if counts[m] < 300 { // each of 3 members owns at least 10%
			t.Errorf("member %s owns only %d/3000 keys — ring badly skewed", m, counts[m])
		}
	}
}

func TestRingStabilityUnderMembershipChange(t *testing.T) {
	r3, err := NewRing([]string{"n1", "n2", "n3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"n1", "n2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 3000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("c%06d", i)
		before := r3.Owner(key)
		after := r2.Owner(key)
		if before != "n3" && before != after {
			t.Fatalf("key %s moved %s→%s though its owner never left", key, before, after)
		}
		if before != after {
			moved++
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Errorf("removing one of three members moved %d/%d keys", moved, keys)
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty member name accepted")
	}
}

// testSystem builds one seeded Figure-1 system.
func testSystem(seed int64) *core.System {
	d := workload.NewSwissDomain(seed)
	return core.New(core.Config{DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab,
		Documents: d.Documents, Now: d.Now, Seed: seed})
}

// testMember builds a primary/replica pair of local nodes over memory
// stores sharing one seeded system.
func testMember(name string, sys *core.System) (Member, *LocalNode, *LocalNode) {
	p := NewLocalNode(name+"-primary", sessionstore.NewMemory(sessionstore.Config{Shards: 4}), sys)
	rep := NewLocalNode(name+"-replica", sessionstore.NewMemory(sessionstore.Config{Shards: 4}), sys)
	return Member{Name: name, Primary: p, Replica: rep}, p, rep
}

func testRouter(t *testing.T, cfg Config, names ...string) (*Router, map[string]*LocalNode, map[string]*LocalNode) {
	t.Helper()
	sys := testSystem(1)
	primaries := map[string]*LocalNode{}
	replicas := map[string]*LocalNode{}
	for _, name := range names {
		m, p, rep := testMember(name, sys)
		cfg.Members = append(cfg.Members, m)
		primaries[name] = p
		replicas[name] = rep
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, primaries, replicas
}

func TestRouterRoutesAndReplicates(t *testing.T) {
	ctx := context.Background()
	r, primaries, replicas := testRouter(t, Config{}, "n1", "n2")
	var ids []string
	for i := 0; i < 6; i++ {
		id, err := r.CreateSession(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if _, err := r.Ask(ctx, id, "how many barometer"); err != nil {
			t.Fatal(err)
		}
	}
	// Every session lives on its ring owner's primary AND is already
	// mirrored on the replica (synchronous post-write ship).
	for _, id := range ids {
		owner := r.Ring().Owner(id)
		if _, status := primaries[owner].Store().Get(id); status != sessionstore.Found {
			t.Errorf("session %s missing on its owner %s", id, owner)
		}
		if _, status := replicas[owner].Store().Get(id); status != sessionstore.Found {
			t.Errorf("session %s not replicated on %s", id, owner)
		}
		pp, err := r.Transcript(ctx, id, 0, 100, false)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := r.Transcript(ctx, id, 0, 100, true)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Stale || rp.LagRecords != 0 {
			t.Errorf("caught-up replica page stamped stale: %+v", rp)
		}
		if fmt.Sprintf("%+v", pp) != fmt.Sprintf("%+v", rp) {
			t.Errorf("replica page diverged for %s:\nprimary: %+v\nreplica: %+v", id, pp, rp)
		}
	}
	for _, st := range r.Status(ctx) {
		if st.Promoted || st.ReplicaLag != 0 || st.ShipError != "" {
			t.Errorf("healthy member status = %+v", st)
		}
	}
}

func TestRouterPromotesOnPrimaryDeath(t *testing.T) {
	ctx := context.Background()
	r, primaries, _ := testRouter(t,
		Config{Breaker: resilience.BreakerConfig{FailureThreshold: 1}}, "n1")
	id, err := r.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Ask(ctx, id, "how many barometer"); err != nil {
		t.Fatal(err)
	}
	before, err := r.Transcript(ctx, id, 0, 100, false)
	if err != nil {
		t.Fatal(err)
	}

	primaries["n1"].Kill()
	if _, err := r.Ask(ctx, id, "and in Bern?"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("ask on killed primary error = %v, want ErrNodeDown", err)
	}
	st := r.Status(ctx)[0]
	if !st.Promoted || st.Active != "n1-replica" {
		t.Fatalf("member not promoted after breaker trip: %+v", st)
	}
	// The promoted replica serves the byte-identical committed
	// transcript (the failed turn was never committed anywhere).
	after, err := r.Transcript(ctx, id, 0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", after) != fmt.Sprintf("%+v", before) {
		t.Fatalf("promoted transcript diverged:\nbefore: %+v\nafter: %+v", before, after)
	}
	// The re-ask lands on the promoted replica and commits there.
	if _, err := r.Ask(ctx, id, "and in Bern?"); err != nil {
		t.Fatalf("re-ask after promotion: %v", err)
	}
	page, err := r.Transcript(ctx, id, 0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != before.Total+2 {
		t.Errorf("post-promotion total = %d, want %d", page.Total, before.Total+2)
	}
	// New sessions keep being created — on the promoted node, with ids
	// that never collide with pre-failover ones.
	id2, err := r.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Errorf("router re-issued id %s", id2)
	}
}

func TestProbePromotesIdlePrimary(t *testing.T) {
	ctx := context.Background()
	r, primaries, _ := testRouter(t,
		Config{Breaker: resilience.BreakerConfig{FailureThreshold: 2}}, "n1")
	r.Probe(ctx) // healthy probe: breaker stays closed
	primaries["n1"].Kill()
	r.Probe(ctx)
	if r.Status(ctx)[0].Promoted {
		t.Fatal("promoted after one failure with threshold 2")
	}
	r.Probe(ctx)
	if !r.Status(ctx)[0].Promoted {
		t.Fatal("not promoted after reaching the failure threshold")
	}
}

func TestRouterReplicaLagAndCatchUpAfterPartition(t *testing.T) {
	ctx := context.Background()
	r, _, replicas := testRouter(t, Config{}, "n1")
	id, err := r.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Ask(ctx, id, "how many barometer"); err != nil {
		t.Fatal(err)
	}

	replicas["n1"].SetPartitioned(true)
	// Commits keep succeeding — the replica being away degrades
	// replication, never the write path.
	for _, q := range []string{"and in Bern?", "how many employment"} {
		if _, err := r.Ask(ctx, id, q); err != nil {
			t.Fatalf("ask during partition: %v", err)
		}
	}
	st := r.Status(ctx)[0]
	if st.Promoted {
		t.Fatal("partitioned REPLICA must not trigger promotion")
	}
	if st.ShipError == "" {
		t.Error("status hides the replication failure")
	}
	// Reads during the partition fall back to the primary.
	page, err := r.Transcript(ctx, id, 0, 100, true)
	if err != nil {
		t.Fatalf("read during partition: %v", err)
	}
	if page.Total != 6 {
		t.Errorf("fallback read total = %d, want 6", page.Total)
	}

	replicas["n1"].SetPartitioned(false)
	// One bounded ship step is not enough — the replica is mid-catch-up
	// and its pages say so.
	caught, err := r.ShipStep(ctx, "n1", replicas["n1"].Store().ShardIndex(id), 1)
	if err != nil {
		t.Fatal(err)
	}
	if caught {
		t.Fatal("one frame cannot have caught the replica up")
	}
	mid, err := r.Transcript(ctx, id, 0, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if !mid.Stale || mid.Source != "n1-replica" || mid.LagRecords == 0 {
		t.Fatalf("mid-catch-up page not stamped: %+v", mid)
	}
	if err := r.CatchUp(ctx, "n1"); err != nil {
		t.Fatal(err)
	}
	final, err := r.Transcript(ctx, id, 0, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if final.Stale || final.Total != 6 {
		t.Fatalf("caught-up page = stale %v total %d", final.Stale, final.Total)
	}
	if st := r.Status(ctx)[0]; st.ReplicaLag != 0 || st.ShipError != "" {
		t.Errorf("caught-up status = %+v", st)
	}
}

func TestRouterAdmissionSheds(t *testing.T) {
	ctx := context.Background()
	clock := resilience.NewVirtualClock()
	r, _, _ := testRouter(t, Config{
		Clock:            clock,
		ClusterAdmission: &admission.Config{MaxInflight: -1, Rate: 0.5, Burst: 1},
	}, "n1")
	id, err := r.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The create drained the single-token cluster bucket: the next
	// request sheds with the exact refill time.
	_, err = r.Ask(ctx, id, "how many barometer")
	var ov *admission.Overload
	if !errors.As(err, &ov) {
		t.Fatalf("error = %v, want *admission.Overload", err)
	}
	if !ov.Computed || ov.RetryAfter != 2*time.Second {
		t.Errorf("overload = computed %v retryAfter %s, want computed 2s", ov.Computed, ov.RetryAfter)
	}
	clock.Advance(2 * time.Second)
	if _, err := r.Ask(ctx, id, "how many barometer"); err != nil {
		t.Fatalf("ask after refill: %v", err)
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(Config{}); err == nil {
		t.Error("empty router accepted")
	}
	sys := testSystem(1)
	m, _, _ := testMember("n1", sys)
	if _, err := NewRouter(Config{Members: []Member{m, m}}); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRouter(Config{Members: []Member{{Name: "n1"}}}); err == nil {
		t.Error("member without primary accepted")
	}
}
