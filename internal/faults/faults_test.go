package faults

import (
	"errors"
	"testing"
	"time"

	"github.com/reliable-cda/cda/internal/resilience"
)

func TestInjectDeterministic(t *testing.T) {
	run := func() []string {
		in := New(Config{Seed: 11, Default: Rates{Error: 0.3, Latency: 0.2}}, nil)
		var out []string
		for i := 0; i < 200; i++ {
			if err := in.Inject("sqldb.execute"); err != nil {
				out = append(out, err.Error())
			} else {
				out = append(out, "ok")
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault stream diverged at call %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestInjectRatesRoughlyHonored(t *testing.T) {
	in := New(Config{Seed: 5, Default: Rates{Error: 0.25, Latency: 0.25}}, nil)
	const n = 4000
	for i := 0; i < n; i++ {
		// Errors are expected; the tally below checks the rate.
		_ = in.Inject("embed.search") // cdalint:ignore dropped-error -- outcome read from Snapshot below
	}
	c := in.Snapshot()["embed.search"]
	if c.Calls != n {
		t.Fatalf("want %d calls, got %d", n, c.Calls)
	}
	errFrac := float64(c.Errors) / n
	latFrac := float64(c.Latencies) / n
	if errFrac < 0.2 || errFrac > 0.3 {
		t.Fatalf("error rate %v far from 0.25", errFrac)
	}
	if latFrac < 0.2 || latFrac > 0.3 {
		t.Fatalf("latency rate %v far from 0.25", latFrac)
	}
}

func TestInjectedErrorsAreTransient(t *testing.T) {
	in := New(Config{Seed: 1, Default: Rates{Error: 1}}, nil)
	err := in.Inject("storage.get")
	if err == nil {
		t.Fatal("rate 1 must always inject")
	}
	if !resilience.IsTransient(err) {
		t.Fatal("injected errors must be transient so retries engage")
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Op != "storage.get" {
		t.Fatalf("want InjectedError carrying the op, got %v", err)
	}
}

func TestLatencyAdvancesClock(t *testing.T) {
	clock := resilience.NewVirtualClock()
	in := New(Config{Seed: 1, Default: Rates{Latency: 1}, Latency: 7 * time.Millisecond}, clock)
	if err := in.Inject("textindex.search"); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != 7*time.Millisecond {
		t.Fatalf("latency fault must sleep on the clock, now=%v", clock.Now())
	}
}

func TestPerBackendOverrides(t *testing.T) {
	in := New(Config{
		Seed:       3,
		Default:    Rates{},
		PerBackend: map[string]Rates{"vectorindex": {Error: 1}},
	}, nil)
	if err := in.Inject("vectorindex.search"); err == nil {
		t.Fatal("override backend must fault")
	}
	if err := in.Inject("sqldb.execute"); err != nil {
		t.Fatalf("default backend must not fault: %v", err)
	}
}

func TestCorruptTokens(t *testing.T) {
	in := New(Config{Seed: 9, Default: Rates{Corrupt: 1}}, nil)
	toks := []string{"SELECT", "canton", "FROM", "employment"}
	got := in.CorruptTokens("nlmodel.generate", toks)
	same := len(got) == len(toks)
	if same {
		for i := range got {
			if got[i] != toks[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("rate-1 corruption left tokens untouched: %v", got)
	}
	for i, want := range []string{"SELECT", "canton", "FROM", "employment"} {
		if toks[i] != want {
			t.Fatal("input slice must never be mutated")
		}
	}

	off := New(Config{Seed: 9}, nil)
	if got := off.CorruptTokens("nlmodel.generate", toks); len(got) != len(toks) {
		t.Fatalf("rate-0 corruption must be identity, got %v", got)
	}
}

func TestTornWriteDeterministic(t *testing.T) {
	run := func() (cuts []int, fired int) {
		in := New(Config{Seed: 7, Default: Rates{Crash: 0.5}}, nil)
		payload := []byte("0123456789abcdef")
		for i := 0; i < 50; i++ {
			got, crashed := in.TornWrite("wal.append", payload)
			if !crashed {
				if len(got) != len(payload) {
					t.Fatalf("clean write truncated to %d bytes", len(got))
				}
				cuts = append(cuts, -1)
				continue
			}
			fired++
			if len(got) >= len(payload) {
				t.Fatalf("crash fault left a complete write (%d bytes)", len(got))
			}
			cuts = append(cuts, len(got))
		}
		if c := in.Snapshot()["wal.append"]; c.Crashes != int64(fired) || c.Calls != 50 {
			t.Fatalf("counts = %+v, want crashes=%d calls=50", c, fired)
		}
		return cuts, fired
	}
	a, firedA := run()
	b, firedB := run()
	if firedA == 0 || firedA == 50 {
		t.Fatalf("crash rate 0.5 fired %d/50 times", firedA)
	}
	if firedA != firedB {
		t.Fatalf("fired %d vs %d across identical runs", firedA, firedB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cut %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTornWriteZeroRatePassesThrough(t *testing.T) {
	in := New(Config{Seed: 1}, nil)
	b, crashed := in.TornWrite("wal.append", []byte("abc"))
	if crashed || string(b) != "abc" {
		t.Fatalf("TornWrite = %q, %t", b, crashed)
	}
}
