// Package faults is the deterministic, seeded chaos injector behind
// the repo's resilience guarantees. Backends (sqldb execution,
// vector/text/embed search, nlmodel generation, storage lookups)
// expose small hook interfaces; an Injector wired into those hooks
// draws per-backend error, latency, and corruption faults from one
// seeded rand.Rand. Everything is deterministic: the same seed and
// the same call sequence produce the same faults, so a chaos run's
// transcript is byte-for-byte reproducible (the determinism contract
// from the parallel-execution layer, extended to failures).
//
// Injected errors are marked transient (resilience.MarkTransient), so
// the retry layer treats them exactly like real backend flakiness;
// latency faults sleep on the injected clock (zero wall time under a
// VirtualClock); corruption faults hand backends a seeded token
// corrupter so the verification layer has something real to catch.
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/reliable-cda/cda/internal/nlmodel"
	"github.com/reliable-cda/cda/internal/resilience"
)

// Rates are per-operation fault probabilities in [0,1].
type Rates struct {
	// Error is the probability an operation fails with a transient
	// injected error.
	Error float64
	// Latency is the probability an operation is delayed by Config
	// .Latency on the injected clock.
	Latency float64
	// Corrupt is the probability a corruption-capable operation has
	// its payload corrupted (e.g. the NL model's token stream).
	Corrupt float64
	// Crash is the probability a durable append is torn mid-write
	// (TornWrite): the write stops at a seeded cut point and the
	// process is considered dead. The session store's WAL uses this to
	// property-test crash recovery against torn tails.
	Crash float64
}

// Config assembles an Injector.
type Config struct {
	// Seed drives the fault stream deterministically.
	Seed int64
	// Default applies to every backend without an override.
	Default Rates
	// PerBackend overrides rates for specific backend names (the op
	// prefix before the first dot, e.g. "sqldb" for "sqldb.execute").
	PerBackend map[string]Rates
	// Latency is the injected delay per latency fault (default 5ms of
	// clock time).
	Latency time.Duration
}

// Counts tallies the faults injected for one backend.
type Counts struct {
	Calls     int64
	Errors    int64
	Latencies int64
	Corrupted int64
	Crashes   int64
}

// InjectedError is the transient failure the injector produces,
// carrying the faulted operation for breaker attribution and tests.
type InjectedError struct {
	Op string
}

// Error describes the injected fault.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected backend error on %s", e.Op)
}

// Injector draws deterministic faults for backend operations. The
// zero value is not usable; construct with New. A nil *Injector is
// safe to pass where a hook interface is optional — but note that
// storing a nil *Injector in a non-nil interface field re-enables the
// methods, so backends guard with `if hook != nil` on the interface,
// and core only sets hooks when an injector is configured.
type Injector struct {
	cfg   Config
	clock resilience.Clock

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[string]*Counts
}

// New builds an injector on the given clock (nil = VirtualClock, the
// deterministic default).
func New(cfg Config, clock resilience.Clock) *Injector {
	if clock == nil {
		clock = resilience.NewVirtualClock()
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 5 * time.Millisecond
	}
	return &Injector{
		cfg:    cfg,
		clock:  clock,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		counts: make(map[string]*Counts),
	}
}

// rates resolves the effective rates for an op like "sqldb.execute":
// the backend override (key "sqldb") wins over the default.
func (in *Injector) rates(op string) Rates {
	backend := op
	for i := 0; i < len(op); i++ {
		if op[i] == '.' {
			backend = op[:i]
			break
		}
	}
	if r, ok := in.cfg.PerBackend[backend]; ok {
		return r
	}
	return in.cfg.Default
}

// count returns the op's counter, creating it. Caller holds in.mu.
func (in *Injector) count(op string) *Counts {
	c, ok := in.counts[op]
	if !ok {
		c = &Counts{}
		in.counts[op] = c
	}
	return c
}

// Inject is the error/latency hook backends call at the top of an
// operation. It returns nil (no fault), sleeps the configured latency
// on the clock before returning nil (latency fault), or returns a
// transient *InjectedError (error fault). Exactly one rng draw is
// consumed per decision so the fault stream stays aligned across
// runs.
func (in *Injector) Inject(op string) error {
	r := in.rates(op)
	in.mu.Lock()
	c := in.count(op)
	c.Calls++
	draw := in.rng.Float64()
	var injectErr, injectLat bool
	switch {
	case draw < r.Error:
		injectErr = true
		c.Errors++
	case draw < r.Error+r.Latency:
		injectLat = true
		c.Latencies++
	}
	in.mu.Unlock()
	if injectErr {
		return resilience.MarkTransient(&InjectedError{Op: op})
	}
	if injectLat {
		// Latency rides the injected clock: free and deterministic
		// under a VirtualClock, real under a WallClock. The sleep is
		// not cancellable here because backend hook signatures carry
		// no context; deadline enforcement happens a layer up.
		// cdalint:ignore ctx-propagation -- backend hooks are
		// context-free by design; see the note above.
		if err := in.clock.Sleep(context.Background(), in.cfg.Latency); err != nil {
			return err
		}
	}
	return nil
}

// Corrupt reports whether a corruption fault fires for op, consuming
// one draw.
func (in *Injector) Corrupt(op string) bool {
	r := in.rates(op)
	in.mu.Lock()
	defer in.mu.Unlock()
	c := in.count(op)
	c.Calls++
	if in.rng.Float64() < r.Corrupt {
		c.Corrupted++
		return true
	}
	return false
}

// TornWrite applies a crash fault to a pending durable append: when
// the fault fires it returns the prefix of b that "reached disk"
// before the simulated process death (possibly empty) and true; the
// writer must persist exactly that prefix and then report the crash
// upward. Otherwise b is returned unchanged with false. One rng draw
// decides the fault, a second (only when it fires) picks the cut
// point, so the fault stream stays seed-aligned.
func (in *Injector) TornWrite(op string, b []byte) ([]byte, bool) {
	r := in.rates(op)
	in.mu.Lock()
	defer in.mu.Unlock()
	c := in.count(op)
	c.Calls++
	if in.rng.Float64() >= r.Crash {
		return b, false
	}
	c.Crashes++
	cut := 0
	if len(b) > 0 {
		cut = in.rng.Intn(len(b))
	}
	return b[:cut], true
}

// CorruptTokens applies a corruption fault to a token sequence: when
// the fault fires, the sequence is pushed through a fully-noisy
// nlmodel channel (every token corrupted with the channel's seeded
// modes); otherwise it is returned unchanged. The input is never
// mutated.
func (in *Injector) CorruptTokens(op string, toks []string) []string {
	if !in.Corrupt(op) {
		return toks
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	ch := nlmodel.Channel{HallucinationRate: 0.5}
	return ch.Corrupt(in.rng, toks)
}

// Snapshot returns the per-op fault counts, keys sorted for
// deterministic reporting.
func (in *Injector) Snapshot() map[string]Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]Counts, len(in.counts))
	for op, c := range in.counts {
		out[op] = *c
	}
	return out
}

// Ops returns the sorted operation names seen so far.
func (in *Injector) Ops() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.counts))
	for op := range in.counts {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}
