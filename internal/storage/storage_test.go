package storage

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Str("hi"), "hi"},
		{Bool(true), "true"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestValueAsFloat(t *testing.T) {
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Error("int coercion failed")
	}
	if f, ok := Str("2.5").AsFloat(); !ok || f != 2.5 {
		t.Error("numeric string coercion failed")
	}
	if _, ok := Str("abc").AsFloat(); ok {
		t.Error("non-numeric string must not coerce")
	}
	if _, ok := Null().AsFloat(); ok {
		t.Error("NULL must not coerce")
	}
	if f, ok := Bool(true).AsFloat(); !ok || f != 1 {
		t.Error("bool coercion failed")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Float(2.0), 0},
		{Float(3.5), Int(3), 1},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
		{Null(), Int(0), -1},
		{Null(), Null(), 0},
		{Int(5), Null(), 1},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := Str("a").Compare(Int(1)); err == nil {
		t.Error("string vs int must error")
	}
	if _, err := Bool(true).Compare(Float(1)); err == nil {
		t.Error("bool vs float must error")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("7", KindInt)
	if err != nil || v.I != 7 {
		t.Errorf("int parse: %v %v", v, err)
	}
	v, err = ParseValue("3.0", KindInt)
	if err != nil || v.I != 3 {
		t.Errorf("float-as-int parse: %v %v", v, err)
	}
	if _, err := ParseValue("3.5", KindInt); err == nil {
		t.Error("3.5 must not parse as INT")
	}
	v, err = ParseValue("", KindFloat)
	if err != nil || !v.IsNull() {
		t.Error("empty must parse to NULL")
	}
	v, err = ParseValue("TRUE", KindBool)
	if err != nil || !v.B {
		t.Error("bool parse failed")
	}
	if _, err := ParseValue("zz", KindFloat); err == nil {
		t.Error("bad float must error")
	}
}

func TestInferKind(t *testing.T) {
	cases := []struct {
		in   []string
		want Kind
	}{
		{[]string{"1", "2", "3"}, KindInt},
		{[]string{"1", "2.5"}, KindFloat},
		{[]string{"true", "false"}, KindBool},
		{[]string{"a", "1"}, KindString},
		{[]string{"", ""}, KindString},
		{[]string{"1", "", "2"}, KindInt},
	}
	for _, c := range cases {
		if got := InferKind(c.in); got != c.want {
			t.Errorf("InferKind(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func testTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("emp", Schema{
		{Name: "id", Kind: KindInt},
		{Name: "name", Kind: KindString},
		{Name: "salary", Kind: KindFloat},
	})
	tbl.MustAppendRow(Int(1), Str("ada"), Float(100.5))
	tbl.MustAppendRow(Int(2), Str("bob"), Float(80.25))
	tbl.MustAppendRow(Int(3), Str("cid"), Null())
	return tbl
}

func TestTableBasics(t *testing.T) {
	tbl := testTable(t)
	if tbl.NumRows() != 3 || tbl.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if got := tbl.At(1, 1); got.S != "bob" {
		t.Errorf("At(1,1) = %v", got)
	}
	row := tbl.Row(0)
	if row[0].I != 1 || row[1].S != "ada" {
		t.Errorf("Row(0) = %v", row)
	}
	if _, err := tbl.ColumnByName("nope"); err == nil {
		t.Error("missing column must error")
	}
}

func TestTableAppendValidation(t *testing.T) {
	tbl := testTable(t)
	if err := tbl.AppendRow([]Value{Int(4)}); err == nil {
		t.Error("short row must error")
	}
	if err := tbl.AppendRow([]Value{Str("x"), Str("y"), Float(1)}); err == nil {
		t.Error("kind mismatch must error")
	}
	// INT widens into FLOAT column.
	if err := tbl.AppendRow([]Value{Int(4), Str("dee"), Int(70)}); err != nil {
		t.Errorf("int->float widening failed: %v", err)
	}
	if got := tbl.At(3, 2); got.Kind != KindFloat || got.F != 70 {
		t.Errorf("widened value = %v", got)
	}
}

func TestFloatColumnSkipsNulls(t *testing.T) {
	tbl := testTable(t)
	vals, rows, err := tbl.FloatColumn("salary")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 100.5 || vals[1] != 80.25 {
		t.Errorf("vals = %v", vals)
	}
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestDistinctStrings(t *testing.T) {
	tbl := testTable(t)
	tbl.MustAppendRow(Int(4), Str("ada"), Float(1))
	got, err := tbl.DistinctStrings("name")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ada", "bob", "cid"}
	if len(got) != len(want) {
		t.Fatalf("distinct = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("distinct[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase("test")
	db.Put(testTable(t))
	got, err := db.Get("EMP") // case-insensitive
	if err != nil || got.Name != "emp" {
		t.Fatalf("Get: %v %v", got, err)
	}
	if _, err := db.Get("missing"); err == nil {
		t.Error("missing table must error")
	}
	if names := db.TableNames(); len(names) != 1 || names[0] != "emp" {
		t.Errorf("names = %v", names)
	}
	// Replacement keeps order and count.
	db.Put(NewTable("emp", Schema{{Name: "x", Kind: KindInt}}))
	if len(db.Tables()) != 1 {
		t.Error("replace must not duplicate")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := testTable(t)
	var buf bytes.Buffer
	if err := WriteCSV(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("emp2", &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tbl.NumRows() || got.NumCols() != tbl.NumCols() {
		t.Fatalf("round-trip shape = %dx%d", got.NumRows(), got.NumCols())
	}
	// Inference should give INT, TEXT, FLOAT.
	wantKinds := []Kind{KindInt, KindString, KindFloat}
	for i, k := range wantKinds {
		if got.Schema()[i].Kind != k {
			t.Errorf("inferred kind[%d] = %v, want %v", i, got.Schema()[i].Kind, k)
		}
	}
	if !got.At(0, 0).Equal(Int(1)) || !got.At(2, 2).IsNull() {
		t.Error("round-trip values wrong")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader(""), nil); err == nil {
		t.Error("empty csv must error")
	}
	bad := "id,name\n1,a,extra\n"
	if _, err := ReadCSV("x", strings.NewReader(bad), nil); err == nil {
		t.Error("ragged csv must error")
	}
	mismatch := "a,b\n1,2\n"
	if _, err := ReadCSV("x", strings.NewReader(mismatch), Schema{{Name: "a", Kind: KindInt}}); err == nil {
		t.Error("schema width mismatch must error")
	}
	badval := "n\nxyz\n"
	if _, err := ReadCSV("x", strings.NewReader(badval), Schema{{Name: "n", Kind: KindInt}}); err == nil {
		t.Error("unparseable value must error")
	}
}

// Property: Compare is antisymmetric for comparable values.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		x, err1 := va.Compare(vb)
		y, err2 := vb.Compare(va)
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ParseValue(v.String(), kind) round-trips ints and bools.
func TestParseRoundTripProperty(t *testing.T) {
	f := func(i int64, b bool) bool {
		vi, err := ParseValue(Int(i).String(), KindInt)
		if err != nil || vi.I != i {
			return false
		}
		vb, err := ParseValue(Bool(b).String(), KindBool)
		return err == nil && vb.B == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
