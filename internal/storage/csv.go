package storage

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ReadCSV loads a table from CSV. The first record is the header. If
// schema is nil, column kinds are inferred from up to the first 100
// data rows (preference INT > FLOAT > BOOL > TEXT); otherwise the
// provided schema must match the header width and is used as-is.
func ReadCSV(name string, r io.Reader, schema Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("storage: reading csv for %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("storage: csv for %s has no header", name)
	}
	header := records[0]
	data := records[1:]
	if schema == nil {
		schema = make(Schema, len(header))
		for c, h := range header {
			samples := make([]string, 0, 100)
			for r := 0; r < len(data) && r < 100; r++ {
				samples = append(samples, data[r][c])
			}
			schema[c] = ColumnDef{Name: h, Kind: InferKind(samples)}
		}
	} else if len(schema) != len(header) {
		return nil, fmt.Errorf("storage: schema has %d columns, csv header has %d", len(schema), len(header))
	}
	t := NewTable(name, schema)
	for rn, rec := range data {
		if len(rec) != len(schema) {
			return nil, fmt.Errorf("storage: row %d has %d fields, want %d", rn+1, len(rec), len(schema))
		}
		row := make([]Value, len(rec))
		for c, raw := range rec {
			v, err := ParseValue(raw, schema[c].Kind)
			if err != nil {
				return nil, fmt.Errorf("storage: row %d col %s: %w", rn+1, schema[c].Name, err)
			}
			row[c] = v
		}
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteCSV serializes the table as CSV with a header row. NULLs are
// written as empty fields.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c := 0; c < t.NumCols(); c++ {
			v := t.At(r, c)
			if v.IsNull() {
				rec[c] = ""
			} else {
				rec[c] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
