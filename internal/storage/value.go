// Package storage implements the columnar table store underlying the
// CDA computational infrastructure: typed columns, in-memory tables
// with schema, a database registry, and a CSV codec. The SQL engine
// (internal/sqldb) executes against these tables and the provenance
// layer references their rows by (table, row-index) coordinates.
package storage

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the value types a column can hold.
type Kind int

// Supported column kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a type name (case-insensitive) to a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT":
		return KindInt, nil
	case "FLOAT", "REAL", "DOUBLE", "NUMERIC":
		return KindFloat, nil
	case "TEXT", "STRING", "VARCHAR", "CHAR":
		return KindString, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("storage: unknown type %q", s)
	}
}

// Value is a dynamically typed cell value. The zero Value is NULL.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// Convenience constructors.
func Null() Value           { return Value{} }
func Int(i int64) Value     { return Value{Kind: KindInt, I: i} }
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }
func Str(s string) Value    { return Value{Kind: KindString, S: s} }
func Bool(b bool) Value     { return Value{Kind: KindBool, B: b} }

// IsNull reports whether v is the NULL value.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat coerces numeric values to float64; booleans map to 0/1.
// Returns false for NULL and strings that do not parse as numbers.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// String renders the value for display; NULL renders as "NULL".
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		return strconv.FormatBool(v.B)
	default:
		return "?"
	}
}

// Compare orders two values. NULL sorts before everything; numeric
// kinds compare numerically across Int/Float; otherwise values must
// share a kind. Returns -1, 0, or +1 and an error on incomparable
// kinds.
func (v Value) Compare(o Value) (int, error) {
	if v.IsNull() || o.IsNull() {
		switch {
		case v.IsNull() && o.IsNull():
			return 0, nil
		case v.IsNull():
			return -1, nil
		default:
			return 1, nil
		}
	}
	if isNumeric(v.Kind) && isNumeric(o.Kind) {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.Kind != o.Kind {
		return 0, fmt.Errorf("storage: cannot compare %s with %s", v.Kind, o.Kind)
	}
	switch v.Kind {
	case KindString:
		return strings.Compare(v.S, o.S), nil
	case KindBool:
		switch {
		case v.B == o.B:
			return 0, nil
		case !v.B:
			return -1, nil
		default:
			return 1, nil
		}
	default:
		return 0, fmt.Errorf("storage: cannot compare kind %s", v.Kind)
	}
}

// Equal reports deep value equality with numeric cross-kind coercion.
func (v Value) Equal(o Value) bool {
	c, err := v.Compare(o)
	return err == nil && c == 0
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

// ParseValue parses raw text into the given kind. Empty text becomes
// NULL for every kind.
func ParseValue(raw string, kind Kind) (Value, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return Null(), nil
	}
	switch kind {
	case KindInt:
		i, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			// Accept float-looking integers like "3.0".
			f, ferr := strconv.ParseFloat(raw, 64)
			if ferr != nil || f != math.Trunc(f) {
				return Null(), fmt.Errorf("storage: %q is not an INT", raw)
			}
			i = int64(f)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return Null(), fmt.Errorf("storage: %q is not a FLOAT", raw)
		}
		return Float(f), nil
	case KindString:
		return Str(raw), nil
	case KindBool:
		b, err := strconv.ParseBool(strings.ToLower(raw))
		if err != nil {
			return Null(), fmt.Errorf("storage: %q is not a BOOL", raw)
		}
		return Bool(b), nil
	default:
		return Null(), fmt.Errorf("storage: cannot parse into kind %s", kind)
	}
}

// InferKind guesses the narrowest kind that parses every sample; the
// order of preference is INT, FLOAT, BOOL, TEXT. Empty samples are
// ignored. With no non-empty samples it returns TEXT.
func InferKind(samples []string) Kind {
	okInt, okFloat, okBool, seen := true, true, true, false
	for _, s := range samples {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		seen = true
		if _, err := strconv.ParseInt(s, 10, 64); err != nil {
			okInt = false
		}
		if _, err := strconv.ParseFloat(s, 64); err != nil {
			okFloat = false
		}
		if _, err := strconv.ParseBool(strings.ToLower(s)); err != nil {
			okBool = false
		}
	}
	switch {
	case !seen:
		return KindString
	case okInt:
		return KindInt
	case okFloat:
		return KindFloat
	case okBool:
		return KindBool
	default:
		return KindString
	}
}
