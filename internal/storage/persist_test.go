package storage

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := NewDatabase("hr")
	tbl := testTable(t)
	tbl.Description = "test employees"
	db.Put(tbl)
	if err := SaveDir(db, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "hr" {
		t.Errorf("name = %q", got.Name)
	}
	lt, err := got.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if lt.Description != "test employees" {
		t.Errorf("description = %q", lt.Description)
	}
	if lt.NumRows() != tbl.NumRows() {
		t.Fatalf("rows = %d", lt.NumRows())
	}
	// Typed schema survives exactly (no inference drift: the float
	// column stays FLOAT even though its values could parse as INT).
	for i, c := range tbl.Schema() {
		if lt.Schema()[i].Kind != c.Kind {
			t.Errorf("column %s kind = %v, want %v", c.Name, lt.Schema()[i].Kind, c.Kind)
		}
	}
	for r := 0; r < tbl.NumRows(); r++ {
		for c := 0; c < tbl.NumCols(); c++ {
			if !lt.At(r, c).Equal(tbl.At(r, c)) && !(lt.At(r, c).IsNull() && tbl.At(r, c).IsNull()) {
				t.Errorf("cell (%d,%d) = %v, want %v", r, c, lt.At(r, c), tbl.At(r, c))
			}
		}
	}
}

func TestSaveDirSchemaPreservesIntColumnWithRoundValues(t *testing.T) {
	dir := t.TempDir()
	db := NewDatabase("x")
	tbl := NewTable("t", Schema{{Name: "f", Kind: KindFloat}})
	tbl.MustAppendRow(Float(100)) // would infer as INT without manifest
	db.Put(tbl)
	if err := SaveDir(db, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	lt, _ := got.Get("t")
	if lt.Schema()[0].Kind != KindFloat {
		t.Errorf("kind = %v, want FLOAT", lt.Schema()[0].Kind)
	}
}

func TestLoadDirWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "nums.csv"), []byte("a,b\n1,x\n2,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Get("nums")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 || tbl.Schema()[0].Kind != KindInt || tbl.Schema()[1].Kind != KindString {
		t.Errorf("inferred table = %v rows, kinds %v %v", tbl.NumRows(), tbl.Schema()[0].Kind, tbl.Schema()[1].Kind)
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir must error")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil {
		t.Error("empty dir must error")
	}
	bad := t.TempDir()
	os.WriteFile(filepath.Join(bad, "schema.json"), []byte("{broken"), 0o644)
	if _, err := LoadDir(bad); err == nil {
		t.Error("broken manifest must error")
	}
}

func TestProfile(t *testing.T) {
	tbl := testTable(t)
	stats := Profile(tbl)
	if len(stats) != 3 {
		t.Fatalf("stats = %d cols", len(stats))
	}
	id := stats[0]
	if id.Distinct != 3 || id.Nulls != 0 || !id.HasNumeric || id.Min != 1 || id.Max != 3 || id.Mean != 2 {
		t.Errorf("id stats = %+v", id)
	}
	name := stats[1]
	if name.HasNumeric || name.Distinct != 3 || len(name.TopValues) != 3 {
		t.Errorf("name stats = %+v", name)
	}
	sal := stats[2]
	if sal.Nulls != 1 || !sal.HasNumeric || sal.Min != 80.25 || sal.Max != 100.5 {
		t.Errorf("salary stats = %+v", sal)
	}
}

func TestProfileTopValuesOrdering(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "s", Kind: KindString}})
	for i := 0; i < 3; i++ {
		tbl.MustAppendRow(Str("common"))
	}
	tbl.MustAppendRow(Str("rare"))
	st := Profile(tbl)[0]
	if st.TopValues[0].Value != "common" || st.TopValues[0].Count != 3 {
		t.Errorf("top values = %v", st.TopValues)
	}
}

func TestProfileEmptyTable(t *testing.T) {
	tbl := NewTable("e", Schema{{Name: "x", Kind: KindInt}})
	st := Profile(tbl)[0]
	if st.HasNumeric || st.Distinct != 0 || st.Min != 0 || st.Max != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}
