package storage

import (
	"math"
	"sort"
)

// ColumnStats profiles one column: the numbers a data-source summary
// or a cardinality-aware optimizer needs.
type ColumnStats struct {
	Name     string
	Kind     Kind
	Rows     int
	Nulls    int
	Distinct int
	// Numeric profile (valid when Kind is INT or FLOAT and at least
	// one non-NULL value exists).
	Min, Max, Mean float64
	HasNumeric     bool
	// TopValues are the most frequent non-NULL values (up to 3) for
	// low-cardinality columns, by descending count then value.
	TopValues []ValueCount
}

// ValueCount pairs a rendered value with its frequency.
type ValueCount struct {
	Value string
	Count int
}

// Profile computes statistics for every column of the table.
func Profile(t *Table) []ColumnStats {
	out := make([]ColumnStats, t.NumCols())
	for c, def := range t.Schema() {
		st := ColumnStats{Name: def.Name, Kind: def.Kind, Rows: t.NumRows()}
		counts := map[string]int{}
		var sum float64
		numeric := 0
		st.Min, st.Max = math.Inf(1), math.Inf(-1)
		for r := 0; r < t.NumRows(); r++ {
			v := t.At(r, c)
			if v.IsNull() {
				st.Nulls++
				continue
			}
			counts[v.String()]++
			if f, ok := v.AsFloat(); ok && (v.Kind == KindInt || v.Kind == KindFloat) {
				sum += f
				numeric++
				if f < st.Min {
					st.Min = f
				}
				if f > st.Max {
					st.Max = f
				}
			}
		}
		st.Distinct = len(counts)
		if numeric > 0 {
			st.Mean = sum / float64(numeric)
			st.HasNumeric = true
		} else {
			st.Min, st.Max = 0, 0
		}
		vcs := make([]ValueCount, 0, len(counts))
		for v, n := range counts {
			vcs = append(vcs, ValueCount{Value: v, Count: n})
		}
		sort.Slice(vcs, func(i, j int) bool {
			if vcs[i].Count != vcs[j].Count {
				return vcs[i].Count > vcs[j].Count
			}
			return vcs[i].Value < vcs[j].Value
		})
		if len(vcs) > 3 {
			vcs = vcs[:3]
		}
		st.TopValues = vcs
		out[c] = st
	}
	return out
}
