package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// manifest is the on-disk schema descriptor (schema.json) written
// next to the per-table CSV files.
type manifest struct {
	Name   string          `json:"name"`
	Tables []manifestTable `json:"tables"`
}

type manifestTable struct {
	Name        string           `json:"name"`
	Description string           `json:"description,omitempty"`
	Columns     []manifestColumn `json:"columns"`
}

type manifestColumn struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`
	Description string `json:"description,omitempty"`
}

// SaveDir persists the database as one CSV per table plus a
// schema.json manifest carrying the typed schema and descriptions
// (information a bare CSV loses). The directory is created if needed;
// existing files are overwritten. Every file is published atomically
// (temp + fsync + rename) and the directory is fsynced once at the
// end, so a crash mid-save leaves either the old file or the new one
// — never a truncated CSV that LoadDir would misread as a short table.
func SaveDir(db *Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: creating %s: %w", dir, err)
	}
	m := manifest{Name: db.Name}
	for _, t := range db.Tables() {
		mt := manifestTable{Name: t.Name, Description: t.Description}
		for _, c := range t.Schema() {
			mt.Columns = append(mt.Columns, manifestColumn{
				Name: c.Name, Kind: c.Kind.String(), Description: c.Description,
			})
		}
		m.Tables = append(m.Tables, mt)
		if err := writeDurable(dir, t.Name+".csv", func(f *os.File) error {
			return WriteCSV(t, f)
		}); err != nil {
			return fmt.Errorf("storage: writing %s: %w", t.Name, err)
		}
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := writeDurable(dir, "schema.json", func(f *os.File) error {
		_, werr := f.Write(data)
		return werr
	}); err != nil {
		return fmt.Errorf("storage: writing schema.json: %w", err)
	}
	return syncDir(dir)
}

// writeDurable atomically publishes dir/name: write to a temp file,
// fsync, close, rename into place. The rename's own directory entry
// is covered by the caller's single syncDir(dir) after all files are
// published.
func writeDurable(dir, name string, write func(*os.File) error) error {
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create temp %s: %w", tmp, err)
	}
	if err := write(f); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("storage: write %s: %w", tmp, err), cerr)
	}
	if err := f.Sync(); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("storage: fsync %s: %w", tmp, err), cerr)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: publish %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so renames into it survive a crash on
// filesystems that do not order directory updates with data writes.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		cerr := d.Close()
		return errors.Join(fmt.Errorf("storage: fsync dir %s: %w", dir, err), cerr)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("storage: close dir %s: %w", dir, err)
	}
	return nil
}

// LoadDir restores a database saved with SaveDir. When schema.json is
// absent, every *.csv in the directory is loaded with inferred kinds.
func LoadDir(dir string) (*Database, error) {
	manifestPath := filepath.Join(dir, "schema.json")
	data, err := os.ReadFile(manifestPath)
	if os.IsNotExist(err) {
		return loadInferred(dir)
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("storage: parsing %s: %w", manifestPath, err)
	}
	db := NewDatabase(m.Name)
	for _, mt := range m.Tables {
		schema := make(Schema, len(mt.Columns))
		for i, mc := range mt.Columns {
			kind, err := ParseKind(mc.Kind)
			if err != nil {
				return nil, fmt.Errorf("storage: table %s column %s: %w", mt.Name, mc.Name, err)
			}
			schema[i] = ColumnDef{Name: mc.Name, Kind: kind, Description: mc.Description}
		}
		f, err := os.Open(filepath.Join(dir, mt.Name+".csv"))
		if err != nil {
			return nil, err
		}
		t, err := ReadCSV(mt.Name, f, schema)
		cerr := f.Close()
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, fmt.Errorf("storage: closing %s.csv: %w", mt.Name, cerr)
		}
		t.Description = mt.Description
		db.Put(t)
	}
	return db, nil
}

func loadInferred(dir string) (*Database, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	db := NewDatabase(filepath.Base(dir))
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".csv" {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		name := e.Name()[:len(e.Name())-len(".csv")]
		t, err := ReadCSV(name, f, nil)
		cerr := f.Close()
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, fmt.Errorf("storage: closing %s: %w", e.Name(), cerr)
		}
		db.Put(t)
		loaded++
	}
	if loaded == 0 {
		return nil, fmt.Errorf("storage: no CSV files in %s", dir)
	}
	return db, nil
}
