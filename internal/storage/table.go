package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ColumnDef describes one column of a table schema.
type ColumnDef struct {
	Name string
	Kind Kind
	// Description is free-text metadata used by grounding and catalog
	// search (the paper's P2 requires schema descriptions the NL layer
	// can reason over).
	Description string
}

// Schema is an ordered list of column definitions.
type Schema []ColumnDef

// ColumnIndex returns the index of the named column (case-insensitive)
// or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Table is an in-memory columnar table. Values are stored column-wise;
// all columns always have equal length. Table is safe for concurrent
// reads; writes must be externally serialized (the engine appends only
// during loading).
type Table struct {
	Name        string
	Description string
	schema      Schema
	cols        [][]Value
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	t := &Table{Name: name, schema: schema, cols: make([][]Value, len(schema))}
	return t
}

// Schema returns the table schema (callers must not mutate it).
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return len(t.cols[0])
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.schema) }

// AppendRow validates and appends one row. Values must match the
// column kinds (NULL is allowed anywhere); INT values are accepted in
// FLOAT columns and widened.
func (t *Table) AppendRow(row []Value) error {
	if len(row) != len(t.schema) {
		return fmt.Errorf("storage: row has %d values, schema has %d columns", len(row), len(t.schema))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		want := t.schema[i].Kind
		if v.Kind == want {
			continue
		}
		if want == KindFloat && v.Kind == KindInt {
			row[i] = Float(float64(v.I))
			continue
		}
		return fmt.Errorf("storage: column %s wants %s, got %s", t.schema[i].Name, want, v.Kind)
	}
	for i, v := range row {
		t.cols[i] = append(t.cols[i], v)
	}
	return nil
}

// MustAppendRow appends and panics on schema mismatch; intended for
// test fixtures and generators with statically known shapes.
func (t *Table) MustAppendRow(row ...Value) {
	if err := t.AppendRow(row); err != nil {
		// cdalint:ignore bare-panic -- Must* constructor over statically
		// shaped fixture rows; a mismatch is a programmer error, never
		// reachable from user input.
		panic(err)
	}
}

// At returns the value at (row, col) without bounds checking beyond
// the slice's own.
func (t *Table) At(row, col int) Value { return t.cols[col][row] }

// Row materializes row i as a fresh slice.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for c := range t.cols {
		out[c] = t.cols[c][i]
	}
	return out
}

// Column returns the backing slice for column i; callers must treat it
// as read-only.
func (t *Table) Column(i int) []Value { return t.cols[i] }

// Columns returns the backing column slices in schema order; callers
// must treat them as read-only. This is the zero-copy entry point for
// columnar (batch-at-a-time) execution: the SQL engine's vectorized
// scan operates directly over these slices instead of materializing
// per-row value slices.
func (t *Table) Columns() [][]Value { return t.cols }

// Kinds returns the schema kinds in column order. AppendRow enforces
// that every stored cell is either NULL or its column's kind, so
// vectorized kernels may specialize on these kinds safely.
func (t *Table) Kinds() []Kind {
	out := make([]Kind, len(t.schema))
	for i, c := range t.schema {
		out[i] = c.Kind
	}
	return out
}

// ColumnByName returns the backing slice for the named column.
func (t *Table) ColumnByName(name string) ([]Value, error) {
	i := t.schema.ColumnIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("storage: table %s has no column %q", t.Name, name)
	}
	return t.cols[i], nil
}

// FloatColumn extracts the named column as float64s, skipping NULLs;
// the second return slice holds the row indices kept.
func (t *Table) FloatColumn(name string) ([]float64, []int, error) {
	col, err := t.ColumnByName(name)
	if err != nil {
		return nil, nil, err
	}
	vals := make([]float64, 0, len(col))
	rows := make([]int, 0, len(col))
	for i, v := range col {
		f, ok := v.AsFloat()
		if !ok {
			continue
		}
		vals = append(vals, f)
		rows = append(rows, i)
	}
	return vals, rows, nil
}

// DistinctStrings returns the sorted distinct non-NULL string renderings
// of the named column. Useful for grounding value vocabularies.
func (t *Table) DistinctStrings(name string) ([]string, error) {
	col, err := t.ColumnByName(name)
	if err != nil {
		return nil, err
	}
	set := make(map[string]struct{})
	for _, v := range col {
		if v.IsNull() {
			continue
		}
		set[v.String()] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// FaultHook is the chaos-injection seam (see internal/faults): when
// non-nil it is consulted on every Get and may return an injected
// transient error or add latency. Production deployments leave it
// nil. It must be set before the database serves concurrent readers.
type FaultHook interface {
	Inject(op string) error
}

// Database is a named registry of tables, safe for concurrent use.
type Database struct {
	mu     sync.RWMutex
	Name   string
	tables map[string]*Table
	order  []string
	// Faults, when non-nil, injects deterministic chaos faults into
	// table lookups. Set once at wiring time, before concurrent use.
	Faults FaultHook
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: make(map[string]*Table)}
}

// Put registers (or replaces) a table under its name.
func (db *Database) Put(t *Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(t.Name)
	if _, exists := db.tables[key]; !exists {
		db.order = append(db.order, key)
	}
	db.tables[key] = t
}

// Get returns the named table (case-insensitive).
func (db *Database) Get(name string) (*Table, error) {
	if db.Faults != nil {
		if err := db.Faults.Inject("storage.get"); err != nil {
			return nil, err
		}
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: no table %q in database %s", name, db.Name)
	}
	return t, nil
}

// Tables returns all tables in registration order.
func (db *Database) Tables() []*Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Table, 0, len(db.order))
	for _, key := range db.order {
		out = append(out, db.tables[key])
	}
	return out
}

// TableNames returns the registered table names in registration order.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.order))
	for _, key := range db.order {
		out = append(out, db.tables[key].Name)
	}
	return out
}
