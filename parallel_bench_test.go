package cda

// parallel_bench_test.go benchmarks the parallel execution layer
// (internal/parallel and the operators built on it) against the
// serial paths they replace. Every BenchmarkParallel* family runs the
// same fixture at workers=1 (the exact serial code path) and at
// several fan-out widths, so
//
//	go test -bench='^BenchmarkParallel' -cpu=4
//
// reads as a serial-vs-parallel table. The parallel paths are
// deterministic by construction — byte-identical results at any
// worker count — which the determinism property tests in
// internal/sqldb, internal/vectorindex, internal/textindex, and
// internal/core enforce; these benches measure only the speed side.
// scripts/bench.sh snapshots the whole suite into BENCH_baseline.json.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/textindex"
	"github.com/reliable-cda/cda/internal/vectorindex"
	"github.com/reliable-cda/cda/internal/workload"
)

var parallelWorkerCounts = []int{1, 2, 4, 8}

// parallelBenchDB builds a fact table large enough to clear the
// engine's serial-fallback threshold, plus a join dimension.
func parallelBenchDB(rows, dims int) *storage.Database {
	rng := rand.New(rand.NewSource(1))
	db := storage.NewDatabase("parbench")
	facts := storage.NewTable("facts", storage.Schema{
		{Name: "k", Kind: storage.KindInt},
		{Name: "v", Kind: storage.KindFloat},
		{Name: "grp", Kind: storage.KindString},
	})
	for i := 0; i < rows; i++ {
		facts.MustAppendRow(
			storage.Int(int64(rng.Intn(dims))),
			storage.Float(rng.Float64()*100),
			storage.Str(fmt.Sprintf("g%d", rng.Intn(7))),
		)
	}
	dim := storage.NewTable("dims", storage.Schema{
		{Name: "k", Kind: storage.KindInt},
		{Name: "label", Kind: storage.KindString},
	})
	for i := 0; i < dims; i++ {
		dim.MustAppendRow(storage.Int(int64(i)), storage.Str(fmt.Sprintf("d%d", i%13)))
	}
	db.Put(facts)
	db.Put(dim)
	return db
}

func BenchmarkParallelSQLFilterScan(b *testing.B) {
	db := parallelBenchDB(150000, 200)
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := sqldb.NewEngine(db)
			e.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := e.Query("SELECT * FROM facts WHERE v > 75 AND grp = 'g3'")
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("empty result; fixture broken")
				}
			}
		})
	}
}

func BenchmarkParallelHashJoinProbe(b *testing.B) {
	db := parallelBenchDB(120000, 300)
	const q = "SELECT d.label, AVG(f.v) FROM facts f JOIN dims d ON f.k = d.k GROUP BY d.label ORDER BY d.label"
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := sqldb.NewEngine(db)
			e.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := e.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.HashJoins != 1 {
					b.Fatalf("expected a hash join, stats = %+v", res.Stats)
				}
			}
		})
	}
}

func BenchmarkParallelIVFProbe(b *testing.B) {
	p := workload.VectorParams{N: 20000, Queries: 64, Dim: 32, Clusters: 16, Spread: 1, Scale: 5, Seed: 1}
	data, queries := workload.GenVectors(p)
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			idx, err := vectorindex.NewIVF(data, vectorindex.IVFParams{
				Lists: 64, Probe: 16, KMeansIts: 5, Seed: 1, Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelBM25(b *testing.B) {
	vocab := []string{
		"revenue", "employment", "city", "district", "quarter", "growth",
		"budget", "census", "traffic", "hospital", "school", "energy",
	}
	rng := rand.New(rand.NewSource(2))
	ix := textindex.NewIndex()
	for i := 0; i < 15000; i++ {
		text := ""
		for w := 0; w < 5+rng.Intn(20); w++ {
			text += vocab[rng.Intn(len(vocab))] + " "
		}
		ix.Add(textindex.Document{ID: fmt.Sprintf("d%d", i), Text: text})
	}
	const q = "revenue growth by city district"
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if hits := ix.SearchParallel(q, 10, workers); len(hits) == 0 {
					b.Fatal("no hits; fixture broken")
				}
			}
		})
	}
}

func BenchmarkParallelRespondBatch(b *testing.B) {
	base := []string{
		"how many employment",
		"how many employment where canton is Zurich",
		"what is the average value where canton is Bern",
		"how many barometer",
		"list the canton of employment",
		"how many employment where canton is Geneva",
	}
	var questions []string
	for r := 0; r < 4; r++ {
		questions = append(questions, base...)
	}
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Fresh system per iteration: a warm answer cache would
				// hide the pipeline work the fan-out is spreading.
				b.StopTimer()
				d := workload.NewSwissDomain(1)
				sys := core.New(core.Config{
					DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab,
					Now: d.Now, Seed: 7,
				})
				b.StartTimer()
				if _, err := sys.RespondBatch(context.Background(), questions, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
