package cda

// cluster_bench_test.go measures the cluster layer's three costs:
//
//   - BenchmarkClusterRouterOverhead: one turn through the router —
//     ring placement, admission, the ask on the primary, and the
//     synchronous post-write ship to the replica — versus the same
//     turn asked on a bare node (the replication tax per turn).
//   - BenchmarkClusterFailover: time from a dead primary to the first
//     successful turn on the promoted replica (kill, trip the
//     breaker, re-ask), the whole failover path per iteration.
//   - BenchmarkClusterReplicaRead: transcript pages served by a
//     caught-up replica through the router's preferReplica path.
//
// scripts/bench.sh snapshots BenchmarkCluster* into
// BENCH_cluster.json; the check gate runs each once as a smoke test.

import (
	"context"
	"fmt"
	"testing"

	"github.com/reliable-cda/cda/internal/cluster"
	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/sessionstore"
	"github.com/reliable-cda/cda/internal/workload"
)

// benchNode builds one in-process node: a fresh memory store and a
// seeded Swiss system (virtual clock, no faults).
func benchNode(b *testing.B, name string, seed int64) *cluster.LocalNode {
	b.Helper()
	dom := workload.NewSwissDomain(seed)
	sys := core.New(core.Config{
		DB: dom.DB, Catalog: dom.Catalog, KG: dom.KG, Vocab: dom.Vocab,
		Documents: dom.Documents, Now: dom.Now, Seed: seed,
		Clock: resilience.NewVirtualClock(),
	})
	store := sessionstore.NewMemory(sessionstore.Config{Shards: 4})
	return cluster.NewLocalNode(name, store, sys)
}

func benchRouter(b *testing.B, seed int64, threshold int) (*cluster.Router, *cluster.LocalNode, *cluster.LocalNode) {
	b.Helper()
	pn := benchNode(b, "m1-primary", seed)
	rn := benchNode(b, "m1-replica", seed)
	router, err := cluster.NewRouter(cluster.Config{
		Members: []cluster.Member{{Name: "m1", Primary: pn, Replica: rn}},
		Breaker: resilience.BreakerConfig{FailureThreshold: threshold},
	})
	if err != nil {
		b.Fatal(err)
	}
	return router, pn, rn
}

const benchQuestion = "how many employment where canton is Zurich"

func BenchmarkClusterRouterOverhead(b *testing.B) {
	ctx := context.Background()
	// Both arms rotate to a fresh session every turnsPerSession asks
	// (outside the timer) so the measured turn cost does not depend on
	// b.N via an ever-growing transcript.
	const turnsPerSession = 64
	b.Run("direct", func(b *testing.B) {
		node := benchNode(b, "solo", 1)
		var id string
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%turnsPerSession == 0 {
				b.StopTimer()
				id = fmt.Sprintf("s%d", i/turnsPerSession)
				if err := node.CreateSession(ctx, id); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			if _, err := node.Ask(ctx, id, benchQuestion); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("routed+shipped", func(b *testing.B) {
		router, _, _ := benchRouter(b, 1, 3)
		var id string
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%turnsPerSession == 0 {
				b.StopTimer()
				nid, err := router.CreateSession(ctx)
				if err != nil {
					b.Fatal(err)
				}
				id = nid
				b.StartTimer()
			}
			if _, err := router.Ask(ctx, id, benchQuestion); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkClusterFailover(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		router, pn, _ := benchRouter(b, int64(i)+1, 1)
		id, err := router.CreateSession(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := router.Ask(ctx, id, benchQuestion); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		// The measured span: dead primary -> failed ask trips the
		// breaker -> promoted replica serves the retry.
		pn.Kill()
		if _, err := router.Ask(ctx, id, benchQuestion); err == nil {
			b.Fatal("ask on a killed primary should fail")
		}
		if _, err := router.Ask(ctx, id, benchQuestion); err != nil {
			b.Fatalf("re-ask after promotion: %v", err)
		}
	}
}

func BenchmarkClusterReplicaRead(b *testing.B) {
	ctx := context.Background()
	router, _, _ := benchRouter(b, 1, 3)
	id, err := router.CreateSession(ctx)
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range []string{benchQuestion, "how many employment where canton is Bern"} {
		if _, err := router.Ask(ctx, id, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page, err := router.Transcript(ctx, id, 0, 100, true)
		if err != nil {
			b.Fatal(err)
		}
		if page.Stale {
			b.Fatal("replica should be caught up after synchronous shipping")
		}
		if page.Total == 0 {
			b.Fatal(fmt.Errorf("empty transcript for %s", id))
		}
	}
}
