// Command benchdiff compares two bench.sh JSON snapshots and fails
// when a benchmark regresses.
//
// Usage:
//
//	go run scripts/benchdiff.go [flags] OLD.json NEW.json
//
//	-prefix    comma-separated benchmark-name prefixes to guard
//	           (default "BenchmarkE", the end-to-end experiment
//	           benches); other entries are reported but never fail
//	-threshold allowed fractional ns/op growth (default 0.10)
//
// Every guarded benchmark present in OLD must be present in NEW —
// silently dropping a bench would otherwise read as "no regression" —
// and its ns/op must not grow by more than the threshold. Exit status
// is 1 on any violation, with a per-benchmark table on stdout either
// way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// entry mirrors one element of bench.sh's JSON output.
type entry struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics"`
}

func load(path string) (map[string]float64, []string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var entries []entry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]float64, len(entries))
	order := make([]string, 0, len(entries))
	for _, e := range entries {
		ns, ok := e.Metrics["ns/op"]
		if !ok {
			continue
		}
		if _, dup := byName[e.Name]; !dup {
			order = append(order, e.Name)
		}
		byName[e.Name] = ns
	}
	return byName, order, nil
}

func guarded(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func main() {
	prefix := flag.String("prefix", "BenchmarkE", "comma-separated name prefixes that must not regress")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional ns/op growth for guarded benchmarks")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-prefix P1,P2] [-threshold F] OLD.json NEW.json")
		os.Exit(2)
	}
	oldNS, oldOrder, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newNS, _, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	prefixes := strings.Split(*prefix, ",")
	sort.Strings(oldOrder)

	fmt.Printf("%-55s %15s %15s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	failures := 0
	for _, name := range oldOrder {
		o := oldNS[name]
		n, ok := newNS[name]
		guard := guarded(name, prefixes)
		if !ok {
			if guard {
				fmt.Printf("%-55s %15.0f %15s %9s  FAIL (missing from %s)\n", name, o, "-", "-", flag.Arg(1))
				failures++
			}
			continue
		}
		delta := (n - o) / o
		mark := ""
		if guard && delta > *threshold {
			mark = fmt.Sprintf("  FAIL (> %+.0f%%)", *threshold*100)
			failures++
		}
		fmt.Printf("%-55s %15.0f %15.0f %+8.1f%%%s\n", name, o, n, delta*100, mark)
	}
	if failures > 0 {
		fmt.Printf("benchdiff: %d guarded benchmark(s) regressed beyond %.0f%% (prefixes: %s)\n",
			failures, *threshold*100, *prefix)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no guarded regressions")
}
