#!/usr/bin/env bash
# bench.sh — run the benchmark suite and snapshot it as JSON.
#
# Runs the experiment benches (BenchmarkE*) and the serial-vs-parallel
# suite (BenchmarkParallel*), parses the standard `go test -bench`
# output, and writes one JSON array to BENCH_baseline.json:
#
#   [{"name": "BenchmarkParallelBM25/workers=4-8",
#     "iterations": 100,
#     "metrics": {"ns/op": 4932012}}, ...]
#
# BENCHTIME (default 1x) controls -benchtime; use e.g. BENCHTIME=2s
# for stable numbers, 1x for a smoke snapshot. OUT overrides the
# output path. The parallel families run the same fixture at
# workers=1 (the exact serial path) and several widths, so the
# baseline file doubles as the serial-vs-parallel comparison table.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_baseline.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "==> go test -bench='^(BenchmarkE|BenchmarkParallel)' -benchtime=$BENCHTIME"
go test -run='^$' -bench='^(BenchmarkE|BenchmarkParallel)' -benchtime="$BENCHTIME" . | tee "$RAW"

awk '
/^Benchmark/ {
    name = $1
    iters = $2
    printf "%s{\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", sep, name, iters
    msep = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        printf "%s\"%s\": %s", msep, $(i + 1), $i
        msep = ", "
    }
    printf "}}"
    sep = ",\n "
}
BEGIN { printf "[" }
END   { print "]" }
' "$RAW" > "$OUT"

echo "bench.sh: wrote $(grep -c '"name"' "$OUT") benchmark entries to $OUT"
