#!/usr/bin/env bash
# bench.sh — run the benchmark suite and snapshot it as JSON.
#
# Runs the experiment benches (BenchmarkE*) and the serial-vs-parallel
# suite (BenchmarkParallel*), parses the standard `go test -bench`
# output, and writes one JSON array to BENCH_baseline.json:
#
#   [{"name": "BenchmarkParallelBM25/workers=4-8",
#     "iterations": 100,
#     "metrics": {"ns/op": 4932012}}, ...]
#
# A second pass runs the session-store suite (BenchmarkSessionStore*:
# commit, fsync commit, recovery replay, lookup) and writes it to
# BENCH_sessionstore.json the same way.
#
# A third pass snapshots the columnar-engine suite plus the end-to-end
# E-benches into BENCH_vectorized.json — the candidate file that
# scripts/benchdiff.go compares against the committed
# BENCH_baseline.json (any E-bench more than 10% slower fails):
#
#   go run scripts/benchdiff.go BENCH_baseline.json BENCH_vectorized.json
#
# A fourth pass snapshots the cluster suite (BenchmarkCluster*:
# router+replication overhead per turn, failover time to the first
# successful turn on the promoted replica, replica read throughput)
# into BENCH_cluster.json; regressions are guarded the same way:
#
#   go run scripts/benchdiff.go -prefix BenchmarkCluster \
#       BENCH_cluster.json <fresh-candidate>.json
#
# A fifth pass snapshots the versioned-store suite (BenchmarkVstore*:
# commit latency vs delta size, AsOf materialization, chunk-negotiated
# catch-up vs full-closure transfer) into BENCH_vstore.json, guarded
# the same way:
#
#   go run scripts/benchdiff.go -prefix BenchmarkVstore \
#       BENCH_vstore.json <fresh-candidate>.json
#
# BENCHTIME (default 1x) controls -benchtime; use e.g. BENCHTIME=2s
# for stable numbers, 1x for a smoke snapshot. OUT / OUT_SESSIONSTORE /
# OUT_VECTORIZED / OUT_CLUSTER / OUT_VSTORE override the output paths. The parallel families run
# the same fixture at workers=1 (the exact serial path) and several
# widths, so the baseline file doubles as the serial-vs-parallel
# comparison table; the vectorized families run engine=row vs
# engine=vec, the row-vs-columnar table.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_baseline.json}"
OUT_SESSIONSTORE="${OUT_SESSIONSTORE:-BENCH_sessionstore.json}"
OUT_VECTORIZED="${OUT_VECTORIZED:-BENCH_vectorized.json}"
OUT_CLUSTER="${OUT_CLUSTER:-BENCH_cluster.json}"
OUT_VSTORE="${OUT_VSTORE:-BENCH_vstore.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# bench_json <pattern> <pkg> <out> — run one bench family and snapshot
# the standard `go test -bench` output as a JSON array.
bench_json() {
    local pattern="$1" pkg="$2" out="$3"
    echo "==> go test -bench='$pattern' -benchtime=$BENCHTIME $pkg"
    go test -run='^$' -bench="$pattern" -benchtime="$BENCHTIME" "$pkg" | tee "$RAW"
    awk '
    /^Benchmark/ {
        name = $1
        iters = $2
        printf "%s{\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", sep, name, iters
        msep = ""
        for (i = 3; i + 1 <= NF; i += 2) {
            printf "%s\"%s\": %s", msep, $(i + 1), $i
            msep = ", "
        }
        printf "}}"
        sep = ",\n "
    }
    BEGIN { printf "[" }
    END   { print "]" }
    ' "$RAW" > "$out"
    echo "bench.sh: wrote $(grep -c '"name"' "$out") benchmark entries to $out"
}

bench_json '^(BenchmarkE|BenchmarkParallel)' . "$OUT"
bench_json '^BenchmarkSessionStore' ./internal/sessionstore "$OUT_SESSIONSTORE"
bench_json '^(BenchmarkE|BenchmarkVectorized)' . "$OUT_VECTORIZED"
bench_json '^BenchmarkCluster' . "$OUT_CLUSTER"
bench_json '^BenchmarkVstore' . "$OUT_VSTORE"
