#!/usr/bin/env bash
# check.sh — the extended verification gate for this repo.
#
# Runs, in order:
#   1. go vet        — stock Go correctness checks
#   2. go build      — every package compiles
#   3. cdalint       — the repo's own reliability analyzers. The rule
#                      set is printed from the registry at run time
#                      (cdalint -list) so this script never drifts from
#                      the code; see README "Static analysis &
#                      reliability invariants" for what each enforces.
#                      The analysis itself — per-package rules, the
#                      interprocedural dataflow rules, the
#                      CFG/typestate rules, and the lockset race
#                      rules (racy-access, atomic-plain-mix,
#                      guard-escape) — runs under a 60-second
#                      budget (compile time excluded): if whole-module
#                      analysis ever exceeds it, the gate fails rather
#                      than silently slowing every CI run.
#   4. determinism   — the serial-vs-parallel equality property tests,
#                      run under -race (parallel operators must return
#                      byte-identical results AND be race-clean)
#   5. chaos         — fault-injection sweeps under -race: replayed
#                      dialogues at 5/20/50/100% fault rates must stay
#                      panic-free, annotate every degraded answer, and
#                      produce byte-identical transcripts per seed;
#                      plus the cancellation-contract tests in core
#   6. crash-recovery determinism — the chaos kill-and-recover tests:
#                      each scenario runs twice into fresh directories
#                      and the rendered transcripts are diffed byte for
#                      byte; recovery must serve exactly the committed
#                      prefix, including under injected torn WAL writes
#   7. cluster chaos — the multi-node gates under -race: ring and
#                      router suites, replication shipping, and the
#                      kill/partition cluster scenarios (failover must
#                      serve the byte-identical committed prefix; a
#                      healed partition must lose no committed turn;
#                      both run twice and diff transcripts)
#   8. session durability — the sessionstore, admission, and durable
#                      server suites under -race (WAL replay, snapshot
#                      compaction, TTL eviction, load shedding)
#   9. go test -race — full test suite under the race detector
#  10. bench smoke   — one iteration of every BenchmarkParallel*,
#                      BenchmarkResilience*, BenchmarkVectorized*,
#                      BenchmarkCluster*, BenchmarkVstore*,
#                      BenchmarkSessionStore*, BenchmarkCdalint,
#                      BenchmarkCdastate, and BenchmarkCdarace so a
#                      broken benchmark fixture fails the gate, not
#                      the next perf investigation
#
# Any non-zero exit fails the gate. See README "Static analysis &
# reliability invariants" for what each cdalint rule enforces.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> cdalint ./... (60s analysis budget)"
CDALINT_BIN="$(mktemp -d)/cdalint"
trap 'rm -rf "$(dirname "$CDALINT_BIN")"' EXIT
go build -o "$CDALINT_BIN" ./cmd/cdalint
echo "    rules (from the registry):"
"$CDALINT_BIN" -list | sed 's/^/      /'
timeout 60 "$CDALINT_BIN" ./...

echo "==> determinism property tests (-race)"
go test -race \
  -run 'TestParallelExecution|TestIVFParallelProbe|TestTopKCanonicalUnderTies|TestSearchBatch|TestSearchParallel|TestDenseSearchParallel|TestHybridSearch|TestRespondBatch' \
  ./internal/sqldb ./internal/vectorindex ./internal/textindex ./internal/embed ./internal/core

echo "==> chaos fault sweeps (-race)"
go test -race ./internal/chaos ./internal/faults ./internal/resilience
go test -race -run 'TestCancelled|TestDeadlineExceeded|TestOpenBreaker' ./internal/core

echo "==> crash-recovery determinism (kill-and-recover twice per seed, diff transcripts)"
go test -race -run 'TestKillRecover' ./internal/chaos

echo "==> cluster routing, replication, and kill/partition chaos (-race)"
go test -race ./internal/cluster
go test -race -run 'TestCluster' ./internal/chaos
go test -race -run 'TestHealthzReportsShardSeqAndLag|TestReplicaPaginationMidCatchUp|TestReplicationEndpointErrors' ./internal/server

echo "==> session durability + admission + versioned store (-race)"
go test -race ./internal/sessionstore ./internal/admission ./internal/vstore
go test -race -run 'TestSessionSurvivesRestart|TestTranscriptPagination|TestEvictedSessionGone|TestOverloadSheds|TestRateLimitSheds|TestConcurrentLifecycleAcrossShards|TestCreateSessionIDsMonotonicAcrossRestart' ./internal/server

echo "==> go test -race ./..."
go test -race ./...

echo "==> parallel + resilience + vectorized + cluster + vstore benchmark smoke (1 iteration)"
go test -run='^$' -bench='^Benchmark(Parallel|Resilience|Vectorized|Cluster|Vstore)' -benchtime=1x .

echo "==> session store benchmark smoke (1 iteration)"
go test -run='^$' -bench='^BenchmarkSessionStore' -benchtime=1x ./internal/sessionstore

echo "==> cdalint whole-module benchmark smoke (1 iteration)"
go test -run='^$' -bench='^BenchmarkCda(lint|state|race)$' -benchtime=1x ./internal/analysis

echo "check.sh: all gates passed"
