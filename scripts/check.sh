#!/usr/bin/env bash
# check.sh — the extended verification gate for this repo.
#
# Runs, in order:
#   1. go vet        — stock Go correctness checks
#   2. go build      — every package compiles
#   3. cdalint       — the repo's own reliability analyzers
#                      (dropped-error, nondeterminism, unannotated-answer,
#                       mutex-hygiene, map-order-leak, bare-panic)
#   4. go test -race — full test suite under the race detector
#
# Any non-zero exit fails the gate. See README "Static analysis &
# reliability invariants" for what each cdalint rule enforces.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> cdalint ./..."
go run ./cmd/cdalint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "check.sh: all gates passed"
