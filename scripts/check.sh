#!/usr/bin/env bash
# check.sh — the extended verification gate for this repo.
#
# Runs, in order:
#   1. go vet        — stock Go correctness checks
#   2. go build      — every package compiles
#   3. cdalint       — the repo's own reliability analyzers
#                      (dropped-error, nondeterminism, unannotated-answer,
#                       mutex-hygiene, map-order-leak, bare-panic)
#   4. determinism   — the serial-vs-parallel equality property tests,
#                      run under -race (parallel operators must return
#                      byte-identical results AND be race-clean)
#   5. go test -race — full test suite under the race detector
#   6. bench smoke   — one iteration of every BenchmarkParallel* so a
#                      broken benchmark fixture fails the gate, not
#                      the next perf investigation
#
# Any non-zero exit fails the gate. See README "Static analysis &
# reliability invariants" for what each cdalint rule enforces.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> cdalint ./..."
go run ./cmd/cdalint ./...

echo "==> determinism property tests (-race)"
go test -race \
  -run 'TestParallelExecution|TestIVFParallelProbe|TestTopKCanonicalUnderTies|TestSearchBatch|TestSearchParallel|TestDenseSearchParallel|TestHybridSearch|TestRespondBatch' \
  ./internal/sqldb ./internal/vectorindex ./internal/textindex ./internal/embed ./internal/core

echo "==> go test -race ./..."
go test -race ./...

echo "==> parallel benchmark smoke (1 iteration)"
go test -run='^$' -bench='^BenchmarkParallel' -benchtime=1x .

echo "check.sh: all gates passed"
