#!/usr/bin/env bash
# check.sh — the extended verification gate for this repo.
#
# Runs, in order:
#   1. go vet        — stock Go correctness checks
#   2. go build      — every package compiles
#   3. cdalint       — the repo's own reliability analyzers
#                      (dropped-error, nondeterminism, unannotated-answer,
#                       mutex-hygiene, map-order-leak, bare-panic, raw-sleep)
#                      plus the interprocedural dataflow rules
#                      (ctx-propagation, provenance-taint,
#                       confidence-bounds, lock-flow), which run over the
#                      module-wide call graph. The analysis itself runs
#                      under a 60-second budget (compile time excluded):
#                      if whole-module analysis ever exceeds it, the gate
#                      fails rather than silently slowing every CI run.
#   4. determinism   — the serial-vs-parallel equality property tests,
#                      run under -race (parallel operators must return
#                      byte-identical results AND be race-clean)
#   5. chaos         — fault-injection sweeps under -race: replayed
#                      dialogues at 5/20/50/100% fault rates must stay
#                      panic-free, annotate every degraded answer, and
#                      produce byte-identical transcripts per seed;
#                      plus the cancellation-contract tests in core
#   6. go test -race — full test suite under the race detector
#   7. bench smoke   — one iteration of every BenchmarkParallel* and
#                      BenchmarkResilience* so a broken benchmark
#                      fixture fails the gate, not the next perf
#                      investigation
#
# Any non-zero exit fails the gate. See README "Static analysis &
# reliability invariants" for what each cdalint rule enforces.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> cdalint ./... (60s analysis budget)"
CDALINT_BIN="$(mktemp -d)/cdalint"
trap 'rm -rf "$(dirname "$CDALINT_BIN")"' EXIT
go build -o "$CDALINT_BIN" ./cmd/cdalint
timeout 60 "$CDALINT_BIN" ./...

echo "==> determinism property tests (-race)"
go test -race \
  -run 'TestParallelExecution|TestIVFParallelProbe|TestTopKCanonicalUnderTies|TestSearchBatch|TestSearchParallel|TestDenseSearchParallel|TestHybridSearch|TestRespondBatch' \
  ./internal/sqldb ./internal/vectorindex ./internal/textindex ./internal/embed ./internal/core

echo "==> chaos fault sweeps (-race)"
go test -race ./internal/chaos ./internal/faults ./internal/resilience
go test -race -run 'TestCancelled|TestDeadlineExceeded|TestOpenBreaker' ./internal/core

echo "==> go test -race ./..."
go test -race ./...

echo "==> parallel + resilience benchmark smoke (1 iteration)"
go test -run='^$' -bench='^Benchmark(Parallel|Resilience)' -benchtime=1x .

echo "==> cdalint whole-module benchmark smoke (1 iteration)"
go test -run='^$' -bench='^BenchmarkCdalint$' -benchtime=1x ./internal/analysis

echo "check.sh: all gates passed"
