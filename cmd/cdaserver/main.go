// Command cdaserver serves the reliable CDA system over HTTP/JSON,
// loaded with the synthetic Swiss labour-market domain (or your own
// CSV tables via -csv).
//
// Usage:
//
//	cdaserver [-addr :8080] [-seed 1] [-noise 0.05] [-csv a.csv,b.csv]
//
// Example session:
//
//	curl -X POST localhost:8080/sessions                  # -> {"id":"s0001"}
//	curl -X POST localhost:8080/sessions/s0001/ask \
//	     -d '{"question":"how many employment where canton is Zurich"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/reliable-cda/cda/internal/catalog"
	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/server"
	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "random seed")
	noise := flag.Float64("noise", 0.05, "simulated LLM hallucination rate")
	csvs := flag.String("csv", "", "comma-separated CSV files to serve instead of the Swiss demo domain")
	flag.Parse()

	var cfg core.Config
	var cat *catalog.Catalog
	now := 0
	if *csvs == "" {
		d := workload.NewSwissDomain(*seed)
		cfg = core.Config{DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab, Documents: d.Documents, Now: d.Now}
		cat = d.Catalog
		now = d.Now
	} else {
		db := storage.NewDatabase("served")
		cat = catalog.New()
		for _, path := range strings.Split(*csvs, ",") {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			t, err := storage.ReadCSV(name, f, nil)
			cerr := f.Close()
			if err != nil {
				log.Fatal(err)
			}
			if cerr != nil {
				log.Fatal(cerr)
			}
			db.Put(t)
			cat.Add(catalog.Dataset{ID: name, Name: name, Description: "loaded from " + path, Source: path, Table: t})
		}
		cfg = core.Config{DB: db, Catalog: cat}
	}
	cfg.Seed = *seed
	cfg.HallucinationRate = *noise

	srv := server.New(core.New(cfg), cat, now)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Bounded I/O: a stalled client cannot pin a connection (and
		// its session lock) forever.
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("cdaserver listening on %s\n", *addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		// Graceful drain: stop accepting, let in-flight asks finish,
		// and force-close whatever is still running at the deadline.
		log.Printf("cdaserver: %s received, draining connections", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("cdaserver: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("cdaserver: serve: %v", err)
		}
	}
}
