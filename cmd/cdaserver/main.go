// Command cdaserver serves the reliable CDA system over HTTP/JSON,
// loaded with the synthetic Swiss labour-market domain (or your own
// CSV tables via -csv).
//
// Usage:
//
//	cdaserver [-addr :8080] [-seed 1] [-noise 0.05] [-csv a.csv,b.csv]
//	          [-data-dir ./data] [-session-ttl 30m] [-shards 8]
//	          [-snapshot-every 256] [-max-inflight 64] [-rate 0] [-burst 0]
//	          [-node-name node] [-versioned]
//
// With -data-dir, sessions are durable: every committed turn is
// WAL-logged before the response is acknowledged, and a restarted
// server replays the directory to serve the same transcripts
// byte-for-byte. Without it, sessions live in memory only.
//
// With -versioned (requires -data-dir), the node additionally keeps a
// content-addressed version store under <data-dir>/vstore: the
// analytical database and every session transcript get immutable
// Merkle-tree versions, answers are stamped with the data root hash
// they were computed against, GET /sessions/{id}/asof/{turn} serves
// time-travel transcript reads, and replica catch-up below the
// compaction horizon ships only missing chunks.
//
// Example session:
//
//	curl -X POST localhost:8080/sessions                  # -> {"id":"s0001"}
//	curl -X POST localhost:8080/sessions/s0001/ask \
//	     -d '{"question":"how many employment where canton is Zurich"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/reliable-cda/cda/internal/admission"
	"github.com/reliable-cda/cda/internal/catalog"
	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/server"
	"github.com/reliable-cda/cda/internal/sessionstore"
	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/vstore"
	"github.com/reliable-cda/cda/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "random seed")
	noise := flag.Float64("noise", 0.05, "simulated LLM hallucination rate")
	csvs := flag.String("csv", "", "comma-separated CSV files to serve instead of the Swiss demo domain")
	dataDir := flag.String("data-dir", "", "directory for durable session state (empty: in-memory sessions)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this (0: never)")
	shards := flag.Int("shards", 8, "session store shard count (rounded up to a power of two)")
	snapshotEvery := flag.Int("snapshot-every", 256, "compact each shard's WAL into a snapshot every N records")
	maxInflight := flag.Int("max-inflight", 64, "per-shard concurrent ask limit (negative: unlimited)")
	rate := flag.Float64("rate", 0, "per-shard admitted asks per second (0: unlimited)")
	burst := flag.Float64("burst", 0, "token-bucket burst size (0: max(rate,1))")
	nodeName := flag.String("node-name", "node", "node name reported by /healthz and stamped on stale replica reads")
	versioned := flag.Bool("versioned", false, "keep content-addressed versions of data and transcripts under <data-dir>/vstore (requires -data-dir)")
	flag.Parse()
	if *versioned && *dataDir == "" {
		log.Fatal("cdaserver: -versioned requires -data-dir")
	}

	var cfg core.Config
	var cat *catalog.Catalog
	now := 0
	if *csvs == "" {
		d := workload.NewSwissDomain(*seed)
		cfg = core.Config{DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab, Documents: d.Documents, Now: d.Now}
		cat = d.Catalog
		now = d.Now
	} else {
		db := storage.NewDatabase("served")
		cat = catalog.New()
		for _, path := range strings.Split(*csvs, ",") {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			t, err := storage.ReadCSV(name, f, nil)
			cerr := f.Close()
			if err != nil {
				log.Fatal(err)
			}
			if cerr != nil {
				log.Fatal(cerr)
			}
			db.Put(t)
			cat.Add(catalog.Dataset{ID: name, Name: name, Description: "loaded from " + path, Source: path, Table: t})
		}
		cfg = core.Config{DB: db, Catalog: cat}
	}
	cfg.Seed = *seed
	cfg.HallucinationRate = *noise

	clock := resilience.NewWallClock()
	storeCfg := sessionstore.Config{
		Shards:        *shards,
		SnapshotEvery: *snapshotEvery,
		TTL:           *sessionTTL,
		Clock:         clock,
	}
	var versions *vstore.Store
	if *versioned {
		vs, err := vstore.Open(vstore.Config{Dir: filepath.Join(*dataDir, "vstore")})
		if err != nil {
			log.Fatalf("cdaserver: open version store: %v", err)
		}
		versions = vs
		storeCfg.Versions = vs
		cfg.Versions = vs
	}
	var store *sessionstore.Store
	if *dataDir == "" {
		store = sessionstore.NewMemory(storeCfg)
	} else {
		storeCfg.Dir = *dataDir
		st, err := sessionstore.Open(storeCfg)
		if err != nil {
			log.Fatalf("cdaserver: open session store: %v", err)
		}
		store = st
		log.Printf("cdaserver: durable sessions in %s (%d shards, snapshot every %d, versioned=%t)",
			*dataDir, *shards, *snapshotEvery, *versioned)
	}
	adm := admission.New(admission.Config{
		Shards:      *shards,
		MaxInflight: *maxInflight,
		Rate:        *rate,
		Burst:       *burst,
		Clock:       clock,
	})

	sys := core.New(cfg)
	if versions != nil {
		// Version zero of the analytical data: every answer from here on
		// is stamped with the root hash it was computed against.
		c, err := sys.CommitData(0)
		if err != nil {
			log.Fatalf("cdaserver: commit initial data version: %v", err)
		}
		log.Printf("cdaserver: data root %s (%d chunks)", c.Hash, versions.NumChunks())
	}
	srv := server.NewWithOptions(sys, cat, now, server.Options{Store: store, Admission: adm, NodeName: *nodeName})
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Bounded I/O: a stalled client cannot pin a connection (and
		// its session lock) forever.
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Idle sweeper: evict sessions past the TTL so tombstones are
	// durable (a lazily evicted session would otherwise only tombstone
	// when next touched).
	sweepDone := make(chan struct{})
	var sweepStop func()
	if *sessionTTL > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		sweepStop = cancel
		tick := time.NewTicker(*sessionTTL / 4)
		go func() {
			defer close(sweepDone)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if n, err := store.SweepIdle(); err != nil {
						log.Printf("cdaserver: idle sweep: %v", err)
					} else if n > 0 {
						log.Printf("cdaserver: evicted %d idle sessions", n)
					}
				}
			}
		}()
	} else {
		close(sweepDone)
		sweepStop = func() {}
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("cdaserver listening on %s\n", *addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		// Graceful drain: stop accepting, let in-flight asks finish,
		// and force-close whatever is still running at the deadline.
		log.Printf("cdaserver: %s received, draining connections", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("cdaserver: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("cdaserver: serve: %v", err)
		}
		sweepStop()
		<-sweepDone
		// Close after the drain: every acknowledged turn is already in
		// the WAL; Close compacts shards and surfaces any deferred
		// compaction error.
		if err := store.Close(); err != nil {
			log.Printf("cdaserver: close session store: %v", err)
		}
		if versions != nil {
			if err := versions.Close(); err != nil {
				log.Printf("cdaserver: close version store: %v", err)
			}
		}
	}
}
