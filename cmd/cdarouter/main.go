// Command cdarouter fronts a cluster of cdaserver nodes: it places
// sessions on a consistent-hash ring, ships each committed turn's WAL
// frames from the owning primary to its replica, serves transcript
// reads from replicas, and fails a member over to its replica when
// the primary stops acking.
//
// Usage:
//
//	cdarouter [-addr :8070] [-vnodes 128] [-shards 8]
//	          -member n1=http://127.0.0.1:8081,http://127.0.0.1:8082
//	          [-member n2=...] [-probe-every 2s] [-catchup-every 10s]
//	          [-failure-threshold 3] [-max-inflight 0] [-rate 0] [-burst 0]
//
// Each -member is name=primaryURL[,replicaURL]; -shards must match
// the nodes' own -shards flag (placement is a shared constant).
//
// Endpoints:
//
//	GET  /healthz                  router + per-member failover/lag status
//	POST /sessions                 create a session (router allocates the id)
//	POST /sessions/{id}/ask        one conversational turn
//	GET  /sessions/{id}            transcript page; ?replica=1 reads from
//	                               the replica (stale pages carry
//	                               X-CDA-Stale: true)
//
// Example:
//
//	cdaserver -addr :8081 -node-name n1-primary -data-dir ./n1p &
//	cdaserver -addr :8082 -node-name n1-replica -data-dir ./n1r &
//	cdarouter -member n1=http://127.0.0.1:8081,http://127.0.0.1:8082
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/reliable-cda/cda/internal/admission"
	"github.com/reliable-cda/cda/internal/cluster"
	"github.com/reliable-cda/cda/internal/resilience"
	"github.com/reliable-cda/cda/internal/server"
)

// memberSpec is one parsed -member value; the HTTPNode clients are
// built after flag parsing, when -shards is known.
type memberSpec struct {
	name, primary, replica string
}

// memberFlags accumulates repeated -member name=primaryURL[,replicaURL].
type memberFlags []memberSpec

func (f *memberFlags) String() string {
	names := make([]string, len(*f))
	for i, m := range *f {
		names[i] = m.name
	}
	return strings.Join(names, ",")
}

func (f *memberFlags) Set(v string) error {
	name, urls, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=primaryURL[,replicaURL], got %q", v)
	}
	primary, replica, _ := strings.Cut(urls, ",")
	if primary == "" {
		return fmt.Errorf("member %s: primary URL is empty", name)
	}
	for _, u := range []string{primary, replica} {
		if u == "" {
			continue
		}
		parsed, err := url.Parse(u)
		if err != nil || parsed.Scheme == "" || parsed.Host == "" {
			return fmt.Errorf("member %s: %q is not an absolute URL", name, u)
		}
	}
	*f = append(*f, memberSpec{name: name, primary: primary, replica: replica})
	return nil
}

func main() {
	var members memberFlags
	addr := flag.String("addr", ":8070", "listen address")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member (all routers must agree)")
	shards := flag.Int("shards", 8, "store shard count on every node (must match the nodes' -shards)")
	flag.Var(&members, "member", "ring member as name=primaryURL[,replicaURL]; repeatable")
	probeEvery := flag.Duration("probe-every", 2*time.Second, "primary health-probe interval (0: no probing)")
	catchupEvery := flag.Duration("catchup-every", 10*time.Second, "background replica catch-up interval (0: ship only after writes)")
	failureThreshold := flag.Int("failure-threshold", 3, "consecutive primary failures before failover")
	maxInflight := flag.Int("max-inflight", 0, "cluster-wide concurrent request limit (0: unlimited)")
	rate := flag.Float64("rate", 0, "cluster-wide admitted requests per second (0: unlimited)")
	burst := flag.Float64("burst", 0, "token-bucket burst size (0: max(rate,1))")
	flag.Parse()

	if len(members) == 0 {
		log.Fatal("cdarouter: at least one -member is required")
	}

	httpClient := &http.Client{Timeout: 30 * time.Second}
	ringMembers := make([]cluster.Member, 0, len(members))
	for _, spec := range members {
		m := cluster.Member{
			Name:    spec.name,
			Primary: cluster.NewHTTPNode(spec.name+"-primary", spec.primary, *shards, httpClient),
		}
		if spec.replica != "" {
			m.Replica = cluster.NewHTTPNode(spec.name+"-replica", spec.replica, *shards, httpClient)
		}
		ringMembers = append(ringMembers, m)
	}

	clock := resilience.NewWallClock()
	cfg := cluster.Config{
		Members: ringMembers,
		VNodes:  *vnodes,
		Clock:   clock,
		Breaker: resilience.BreakerConfig{FailureThreshold: *failureThreshold},
	}
	if *maxInflight > 0 || *rate > 0 {
		cfg.ClusterAdmission = &admission.Config{
			MaxInflight: *maxInflight,
			Rate:        *rate,
			Burst:       *burst,
		}
	}
	router, err := cluster.NewRouter(cfg)
	if err != nil {
		log.Fatalf("cdarouter: %v", err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler(router),
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Background loops: probe dead-but-idle primaries into failover,
	// and re-ship replicas that fell behind (a ship failure after a
	// write otherwise waits for the next write to that shard). Both are
	// ctx-bound and joined on shutdown.
	loopCtx, loopStop := context.WithCancel(context.Background())
	loopsDone := make(chan struct{})
	go func() {
		defer close(loopsDone)
		runLoops(loopCtx, router, *probeEvery, *catchupEvery)
	}()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("cdarouter listening on %s (%d members, %d vnodes)\n",
			*addr, len(ringMembers), *vnodes)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("cdarouter: %s received, draining connections", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("cdarouter: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("cdarouter: serve: %v", err)
		}
		loopStop()
		<-loopsDone
	}
}

// runLoops drives the probe and catch-up tickers until ctx ends.
func runLoops(ctx context.Context, router *cluster.Router, probeEvery, catchupEvery time.Duration) {
	var probeC, catchupC <-chan time.Time
	if probeEvery > 0 {
		t := time.NewTicker(probeEvery)
		defer t.Stop()
		probeC = t.C
	}
	if catchupEvery > 0 {
		t := time.NewTicker(catchupEvery)
		defer t.Stop()
		catchupC = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-probeC:
			router.Probe(ctx)
		case <-catchupC:
			for _, st := range router.Status(ctx) {
				if st.Promoted || st.ReplicaLag == 0 {
					continue
				}
				if err := router.CatchUp(ctx, st.Name); err != nil {
					log.Printf("cdarouter: catch-up %s: %v", st.Name, err)
				}
			}
		}
	}
}

// handler builds the router's HTTP surface.
func handler(router *cluster.Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"members": router.Status(r.Context()),
		})
	})
	mux.HandleFunc("POST /sessions", func(w http.ResponseWriter, r *http.Request) {
		id, err := router.CreateSession(r.Context())
		if err != nil {
			writeRouteError(w, "create session", err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
	})
	mux.HandleFunc("POST /sessions/{id}/ask", func(w http.ResponseWriter, r *http.Request) {
		var req server.AskRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "body must be JSON with a question field")
			return
		}
		resp, err := router.Ask(r.Context(), r.PathValue("id"), req.Question)
		if err != nil {
			writeRouteError(w, "ask", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		offset, limit := 0, 0
		var err error
		if v := q.Get("offset"); v != "" {
			if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
				writeError(w, http.StatusBadRequest, "offset must be a non-negative integer")
				return
			}
		}
		if v := q.Get("limit"); v != "" {
			if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
				writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
				return
			}
		}
		preferReplica := q.Get("replica") == "1"
		page, err := router.Transcript(r.Context(), r.PathValue("id"), offset, limit, preferReplica)
		if err != nil {
			writeRouteError(w, "transcript", err)
			return
		}
		if page.Stale {
			w.Header().Set("X-CDA-Stale", "true")
		}
		writeJSON(w, http.StatusOK, page)
	})
	return mux
}

// writeRouteError folds a router error into the right status code:
// overload → 429 + Retry-After, node down → 503 (the member is mid-
// failover; the request is safe to retry), unknown session → 404.
func writeRouteError(w http.ResponseWriter, op string, err error) {
	var ov *admission.Overload
	switch {
	case errors.As(err, &ov):
		w.Header().Set("Retry-After", admission.RetryAfterSeconds(ov.RetryAfter))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("overloaded (%s limit); retry after the indicated delay", ov.Reason))
	case errors.Is(err, cluster.ErrNodeDown):
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("%s: node unavailable, retry shortly", op))
	case errors.Is(err, cluster.ErrUnknownSession):
		writeError(w, http.StatusNotFound, "unknown session")
	default:
		writeError(w, http.StatusBadGateway, fmt.Sprintf("%s failed: %v", op, err))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("cdarouter: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
