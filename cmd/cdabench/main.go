// Command cdabench regenerates every experiment in EXPERIMENTS.md
// (E1–E8) and prints the result tables. Use -only to run a subset and
// -quick for smaller workloads.
//
// Usage:
//
//	cdabench [-only e1,e5] [-quick] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/reliable-cda/cda/internal/experiments"
	"github.com/reliable-cda/cda/internal/workload"
)

func main() {
	ctx := context.Background()
	only := flag.String("only", "", "comma-separated experiment ids (e1..e8); empty = all")
	quick := flag.Bool("quick", false, "smaller workloads for a fast smoke run")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	scale := 1.0
	if *quick {
		scale = 0.2
	}
	n := func(full int) int {
		v := int(float64(full) * scale)
		if v < 20 {
			v = 20
		}
		return v
	}

	type runner struct {
		id  string
		run func() (fmt.Stringer, error)
	}
	runners := []runner{
		{"e1", func() (fmt.Stringer, error) {
			r, err := experiments.RunE1(ctx, *seed)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"e2", func() (fmt.Stringer, error) {
			p := workload.DefaultVectorParams()
			p.Seed = *seed
			if *quick {
				p.N, p.Queries = 4000, 40
			}
			r, err := experiments.RunE2(p, 10)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"e2b", func() (fmt.Stringer, error) {
			p := workload.DefaultVectorParams()
			p.Seed = *seed
			p.Queries = 50
			sizes := []int{5000, 20000, 50000}
			if *quick {
				sizes = []int{2000, 8000}
			}
			r, err := experiments.RunE2Sweep(sizes, p, 10)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"e3", func() (fmt.Stringer, error) {
			r, err := experiments.RunE3(n(300), 0.8, 0.05, *seed)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"e4", func() (fmt.Stringer, error) {
			r, err := experiments.RunE4(n(300), *seed)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"e5", func() (fmt.Stringer, error) {
			r, err := experiments.RunE5(n(600), 0.2, *seed)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"e6", func() (fmt.Stringer, error) {
			sessions := 20
			if *quick {
				sessions = 5
			}
			r, err := experiments.RunE6(ctx, sessions, 6, *seed)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"e7", func() (fmt.Stringer, error) {
			r, err := experiments.RunE7(n(300), 0.3, 0.1, *seed)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"e8", func() (fmt.Stringer, error) {
			r, err := experiments.RunE8(ctx, 0.15, *seed)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"e9", func() (fmt.Stringer, error) {
			r, err := experiments.RunE9(n(240), *seed)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"e10", func() (fmt.Stringer, error) {
			r, err := experiments.RunE10(3, n(100)/4+10, *seed)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"scorecard", func() (fmt.Stringer, error) {
			r, err := experiments.RunScorecard(ctx, *seed)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
	}

	for _, r := range runners {
		if !want(r.id) {
			continue
		}
		start := time.Now() // cdalint:ignore nondeterminism -- reports real wall-clock runtime, not a measured result
		table, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		// cdalint:ignore nondeterminism -- same wall-clock progress report
		fmt.Printf("(%s completed in %v)\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
}
