package main

import (
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/analysis"
)

func names(as []*analysis.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func TestSelectAnalyzersDefault(t *testing.T) {
	all := analysis.Analyzers()
	got, err := selectAnalyzers(all, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all) {
		t.Errorf("default selection = %d analyzers, want all %d", len(got), len(all))
	}
}

func TestSelectAnalyzersOnly(t *testing.T) {
	all := analysis.Analyzers()
	got, err := selectAnalyzers(all, "racy-access, atomic-plain-mix", "")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"racy-access", "atomic-plain-mix"}
	if len(got) != 2 {
		t.Fatalf("selection = %v, want %v", names(got), want)
	}
	// Registry order is preserved regardless of argument order.
	if got[0].Name != "racy-access" || got[1].Name != "atomic-plain-mix" {
		t.Errorf("selection order = %v, want %v", names(got), want)
	}
}

func TestSelectAnalyzersSkip(t *testing.T) {
	all := analysis.Analyzers()
	got, err := selectAnalyzers(all, "", "guard-escape")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all)-1 {
		t.Fatalf("skip selection = %d analyzers, want %d", len(got), len(all)-1)
	}
	for _, a := range got {
		if a.Name == "guard-escape" {
			t.Error("guard-escape survived -skip")
		}
	}
}

func TestSelectAnalyzersValidation(t *testing.T) {
	all := analysis.Analyzers()
	cases := []struct {
		only, skip, wantErr string
	}{
		{"no-such-rule", "", "unknown analyzer"},
		{"", "no-such-rule", "unknown analyzer"},
		{"racy-access", "guard-escape", "mutually exclusive"},
		{" , ", "", "empty rule list"},
	}
	for _, tc := range cases {
		_, err := selectAnalyzers(all, tc.only, tc.skip)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("selectAnalyzers(%q, %q) error = %v, want containing %q",
				tc.only, tc.skip, err, tc.wantErr)
		}
	}
}

func TestSelectAnalyzersSkipAll(t *testing.T) {
	all := analysis.Analyzers()
	var every []string
	for _, a := range all {
		every = append(every, a.Name)
	}
	if _, err := selectAnalyzers(all, "", strings.Join(every, ",")); err == nil {
		t.Error("skipping every analyzer should be an error")
	}
}
