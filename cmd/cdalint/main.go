// Command cdalint runs the repo's reliability-invariant analyzers
// (internal/analysis) over module packages and reports findings with
// file:line positions. It exits 1 when any finding survives the
// cdalint:ignore directives, so it can gate CI (scripts/check.sh).
// The rule set is whatever analysis.Analyzers() registers — run
// `cdalint -list` for the authoritative list with one-line docs; this
// comment deliberately names no rules so it cannot drift.
//
// Usage:
//
//	cdalint [flags] [pattern ...]
//
// Patterns are ./..., directory paths, or module-internal import
// paths; the default is ./... from the current directory's module.
//
// Flags:
//
//	-only a,b    run only the named analyzers
//	-skip a,b    run every analyzer except the named ones
//	-rules a,b   legacy alias for -only
//	-tests       also lint in-package _test.go files
//	-list        print the available analyzers and exit
//	-werror      treat warnings as fatal (default true)
//	-format f    output format: text (default), json, or sarif
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/reliable-cda/cda/internal/analysis"
)

var (
	only   = flag.String("only", "", "comma-separated analyzer names to run (default all)")
	skip   = flag.String("skip", "", "comma-separated analyzer names to exclude")
	rules  = flag.String("rules", "", "legacy alias for -only")
	tests  = flag.Bool("tests", false, "also lint in-package _test.go files")
	list   = flag.Bool("list", false, "list available analyzers and exit")
	werror = flag.Bool("werror", true, "exit nonzero on warnings too")
	format = flag.String("format", "text", "output format: text, json, or sarif")
)

func main() {
	flag.Parse()
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-20s %s: %s\n", a.Name, a.Severity, a.Doc)
		}
		return
	}

	onlyArg := *only
	if *rules != "" {
		if onlyArg != "" {
			fatalf("cdalint: -rules is a legacy alias for -only; pass one of them, not both")
		}
		onlyArg = *rules
	}
	analyzers, err := selectAnalyzers(analysis.Analyzers(), onlyArg, *skip)
	if err != nil {
		fatalf("cdalint: %v", err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatalf("cdalint: %v", err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatalf("cdalint: %v", err)
	}
	loader.IncludeTests = *tests

	var pkgs []*analysis.Package
	for _, pat := range patterns {
		ps, err := loader.Load(pat)
		if err != nil {
			fatalf("cdalint: %v", err)
		}
		pkgs = append(pkgs, ps...)
	}

	findings := analysis.Run(pkgs, analyzers)
	bad := 0
	for i := range findings {
		f := &findings[i]
		if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = filepath.ToSlash(rel)
		}
		if f.Severity == analysis.SeverityError || *werror {
			bad++
		}
	}
	switch *format {
	case "text":
		for _, f := range findings {
			fmt.Println(f)
		}
	case "json":
		if err := writeJSON(os.Stdout, findings, len(pkgs)); err != nil {
			fatalf("cdalint: encoding json: %v", err)
		}
	case "sarif":
		if err := writeSARIF(os.Stdout, findings); err != nil {
			fatalf("cdalint: encoding sarif: %v", err)
		}
	default:
		fatalf("cdalint: unknown -format %q (text, json, sarif)", *format)
	}
	if bad > 0 {
		fatalf("cdalint: %d finding(s) in %d package(s)", bad, len(pkgs))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
