package main

import (
	"encoding/json"
	"io"

	"github.com/reliable-cda/cda/internal/analysis"
)

// jsonFinding is the machine-readable shape of one finding; it
// round-trips through encoding/json.
type jsonFinding struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the top-level -format=json document.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Packages int           `json:"packages"`
}

func toJSONFindings(findings []analysis.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Rule:     f.Rule,
			Severity: f.Severity.String(),
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	return out
}

func writeJSON(w io.Writer, findings []analysis.Finding, packages int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Findings: toJSONFindings(findings), Packages: packages})
}

// Minimal SARIF 2.1.0 document: enough structure for CI annotation
// surfaces (one run, one driver, rule metadata, physical locations).
type sarifReport struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string               `json:"id"`
	ShortDescription sarifMultiformatMsg  `json:"shortDescription"`
	DefaultConfig    sarifRuleDefaultConf `json:"defaultConfiguration"`
}

type sarifMultiformatMsg struct {
	Text string `json:"text"`
}

type sarifRuleDefaultConf struct {
	Level string `json:"level"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func sarifLevel(s analysis.Severity) string {
	if s == analysis.SeverityError {
		return "error"
	}
	return "warning"
}

func writeSARIF(w io.Writer, findings []analysis.Finding) error {
	var rules []sarifRule
	for _, a := range analysis.Analyzers() {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMultiformatMsg{Text: a.Doc},
			DefaultConfig:    sarifRuleDefaultConf{Level: sarifLevel(a.Severity)},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   sarifLevel(f.Severity),
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.Pos.Filename},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	doc := sarifReport{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cdalint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
