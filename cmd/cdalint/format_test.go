package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"github.com/reliable-cda/cda/internal/analysis"
)

func sampleFindings() []analysis.Finding {
	return []analysis.Finding{
		{
			Rule:     "ctx-propagation",
			Severity: analysis.SeverityError,
			Pos:      token.Position{Filename: "internal/core/respond.go", Line: 42, Column: 7},
			Message:  "context.Background() mints a fresh root context",
		},
		{
			Rule:     "raw-sleep",
			Severity: analysis.SeverityWarning,
			Pos:      token.Position{Filename: "internal/faults/faults.go", Line: 9, Column: 2},
			Message:  "time.Sleep bypasses the injected clock",
		},
	}
}

// TestJSONRoundTrip: the -format=json document decodes back through
// encoding/json into the same findings.
func TestJSONRoundTrip(t *testing.T) {
	in := sampleFindings()
	var buf bytes.Buffer
	if err := writeJSON(&buf, in, 3); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	var got jsonReport
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("decoding emitted json: %v", err)
	}
	if got.Packages != 3 {
		t.Errorf("packages = %d, want 3", got.Packages)
	}
	if len(got.Findings) != len(in) {
		t.Fatalf("findings = %d, want %d", len(got.Findings), len(in))
	}
	for i, f := range got.Findings {
		want := in[i]
		if f.Rule != want.Rule || f.Severity != want.Severity.String() ||
			f.File != want.Pos.Filename || f.Line != want.Pos.Line ||
			f.Column != want.Pos.Column || f.Message != want.Message {
			t.Errorf("finding %d did not round-trip: %+v vs %+v", i, f, want)
		}
	}
}

// TestJSONEmpty: a clean run emits an empty findings array, not null.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, nil, 7); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("empty findings should encode as []: %s", buf.String())
	}
}

// TestSARIFShape: the SARIF document is valid JSON with the 2.1.0
// version marker, one run, rule metadata for every analyzer, and one
// result per finding with its physical location.
func TestSARIFShape(t *testing.T) {
	in := sampleFindings()
	var buf bytes.Buffer
	if err := writeSARIF(&buf, in); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	var got sarifReport
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("decoding emitted sarif: %v", err)
	}
	if got.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", got.Version)
	}
	if len(got.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(got.Runs))
	}
	run := got.Runs[0]
	if run.Tool.Driver.Name != "cdalint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(analysis.Analyzers()) {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), len(analysis.Analyzers()))
	}
	if len(run.Results) != len(in) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(in))
	}
	r := run.Results[0]
	if r.RuleID != "ctx-propagation" || r.Level != "error" {
		t.Errorf("result 0 = %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/respond.go" || loc.Region.StartLine != 42 {
		t.Errorf("location 0 = %+v", loc)
	}
}
