package main

import (
	"fmt"
	"strings"

	"github.com/reliable-cda/cda/internal/analysis"
)

// selectAnalyzers applies the -only / -skip rule filters to the
// registry list, preserving registry order. Every name in either list
// must exist in the registry; -only and -skip are mutually exclusive
// (an -only list already says exactly what runs). Empty filters return
// the full suite.
func selectAnalyzers(all []*analysis.Analyzer, only, skip string) ([]*analysis.Analyzer, error) {
	if only != "" && skip != "" {
		return nil, fmt.Errorf("-only and -skip are mutually exclusive")
	}
	if only == "" && skip == "" {
		return all, nil
	}
	parse := func(arg string) (map[string]bool, error) {
		set := map[string]bool{}
		for _, name := range strings.Split(arg, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			found := false
			for _, a := range all {
				if a.Name == name {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			set[name] = true
		}
		if len(set) == 0 {
			return nil, fmt.Errorf("empty rule list")
		}
		return set, nil
	}
	if only != "" {
		want, err := parse(only)
		if err != nil {
			return nil, err
		}
		var out []*analysis.Analyzer
		for _, a := range all {
			if want[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	}
	drop, err := parse(skip)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if !drop[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-skip excludes every analyzer")
	}
	return out, nil
}
