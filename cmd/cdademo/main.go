// Command cdademo writes the synthetic Swiss labour-market datasets
// to a directory as CSV files (plus schema.json), so cdaquery and
// cdaserver can be tried on realistic data immediately:
//
//	cdademo -dir ./demo
//	cdaquery -csv ./demo/barometer.csv -analyze barometer.value
//	cdaquery -csv ./demo/employment.csv "how many employment where canton is Zurich"
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/workload"
)

func main() {
	dir := flag.String("dir", "demo", "output directory")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	d := workload.NewSwissDomain(*seed)
	if err := storage.SaveDir(d.DB, *dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d tables to %s\n", len(d.DB.Tables()), *dir)
	for _, t := range d.DB.Tables() {
		fmt.Printf("  %s.csv (%d rows)\n", t.Name, t.NumRows())
	}
}
