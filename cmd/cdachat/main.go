// Command cdachat is an interactive REPL over the reliable CDA
// system, loaded with the synthetic Swiss labour-market domain of the
// paper's Figure 1. Each answer is printed with its confidence,
// sources, and (with -verbose) the generated code and provenance
// summary.
//
// Usage:
//
//	cdachat [-seed 1] [-noise 0.05] [-verbose]
//
// Try the Figure 1 conversation:
//
//	> Give me an overview of the working force in Switzerland
//	> What is the Swiss workforce barometer?
//	> I am interested in the barometer
//	> Can you please give me the seasonality insights
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/reliable-cda/cda/internal/core"
	"github.com/reliable-cda/cda/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	noise := flag.Float64("noise", 0.05, "simulated LLM hallucination rate")
	verbose := flag.Bool("verbose", false, "print code and provenance for every answer")
	flag.Parse()

	d := workload.NewSwissDomain(*seed)
	sys := core.New(core.Config{
		DB: d.DB, Catalog: d.Catalog, KG: d.KG, Vocab: d.Vocab, Documents: d.Documents, Now: d.Now,
		Seed:              *seed,
		HallucinationRate: *noise,
		Fabrications:      []string{"revenue", "turnover", "kpi_x"},
	})
	sess := sys.NewSession()

	fmt.Println("Reliable CDA — Swiss labour-market domain. Type a question, or 'quit'.")
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		ans, err := sys.Respond(context.Background(), sess, line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			continue
		}
		fmt.Println(ans.Text)
		fmt.Printf("  [confidence %.0f%%", ans.Confidence*100)
		if ans.Abstained {
			fmt.Print(", abstained")
		}
		fmt.Println("]")
		if len(ans.Explanation.Sources) > 0 {
			fmt.Println("  sources: " + strings.Join(ans.Explanation.Sources, "; "))
		}
		if ans.Suggestions != "" {
			fmt.Println("  " + ans.Suggestions)
		}
		if *verbose {
			if ans.Code != "" {
				fmt.Println("  code: " + ans.Code)
			}
			if ans.Provenance != nil && ans.AnswerNode != "" {
				fmt.Println("  provenance:")
				for _, l := range strings.Split(ans.Provenance.Summary(ans.AnswerNode), "\n") {
					fmt.Println("    " + l)
				}
			}
		}
	}
}
