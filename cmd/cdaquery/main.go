// Command cdaquery answers a single question over CSV data through
// the verified NL2SQL pipeline and prints the result with its SQL,
// confidence, and per-row provenance.
//
// Usage:
//
//	cdaquery -csv table1.csv[,table2.csv...] "how many table1 where col is value"
//	cdaquery -sql -csv data.csv "SELECT COUNT(*) FROM data"
//
// Table names are the CSV base names without extension. With -sql the
// question is executed as SQL directly (no NL translation).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/reliable-cda/cda/internal/ground"
	"github.com/reliable-cda/cda/internal/nl2sql"
	"github.com/reliable-cda/cda/internal/sqldb"
	"github.com/reliable-cda/cda/internal/storage"
	"github.com/reliable-cda/cda/internal/timeseries"
)

func main() {
	csvs := flag.String("csv", "", "comma-separated CSV files to load as tables")
	rawSQL := flag.Bool("sql", false, "treat the question as SQL, skipping NL translation")
	analyze := flag.String("analyze", "", "run a time-series analysis instead of a query: table.column")
	seed := flag.Int64("seed", 1, "random seed")
	showProv := flag.Bool("prov", false, "print per-row provenance (base-table rows)")
	flag.Parse()

	if *csvs == "" || (flag.NArg() != 1 && *analyze == "") {
		fmt.Fprintln(os.Stderr, "usage: cdaquery -csv file.csv[,file2.csv] [-sql|-analyze table.column] [-prov] [\"question\"]")
		os.Exit(2)
	}
	db := storage.NewDatabase("cli")
	for _, path := range strings.Split(*csvs, ",") {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		t, err := storage.ReadCSV(name, f, nil)
		cerr := f.Close()
		if err != nil {
			fatal(err)
		}
		if cerr != nil {
			fatal(cerr)
		}
		db.Put(t)
	}

	if *analyze != "" {
		runAnalysis(db, *analyze)
		return
	}

	question := flag.Arg(0)
	var res *sqldb.Result
	if *rawSQL {
		var err error
		res, err = sqldb.NewEngine(db).Query(question)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sql: %s\n", question)
	} else {
		tr := nl2sql.NewTranslator(db, ground.NewGrounder(nil, db, nil), *seed)
		out, err := tr.Translate(question)
		if err != nil {
			fatal(err)
		}
		if out.Abstained {
			fmt.Println("abstained: no candidate query could be verified against the data")
			os.Exit(1)
		}
		fmt.Printf("sql: %s\nconfidence: %.0f%%\n", out.SQL, out.Confidence*100)
		res = out.Result
	}

	fmt.Println(strings.Join(res.Columns, " | "))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
		if *showProv && res.Prov != nil {
			refs := make([]string, len(res.Prov[i]))
			for j, r := range res.Prov[i] {
				refs[j] = fmt.Sprintf("%s[%d]", r.Table, r.Row)
			}
			fmt.Println("  from: " + strings.Join(refs, ", "))
		}
	}
}

// runAnalysis prints trend, seasonality, a 6-step forecast, and
// anomalies for one numeric column.
func runAnalysis(db *storage.Database, target string) {
	parts := strings.SplitN(target, ".", 2)
	if len(parts) != 2 {
		fatal(fmt.Errorf("-analyze expects table.column, got %q", target))
	}
	t, err := db.Get(parts[0])
	if err != nil {
		fatal(err)
	}
	vals, _, err := t.FloatColumn(parts[1])
	if err != nil {
		fatal(err)
	}
	if len(vals) == 0 {
		fatal(fmt.Errorf("column %s has no numeric values", target))
	}
	trend, err := timeseries.DetectTrend(vals)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trend: %s (slope %.4f, confidence %.0f%%)\n", trend.Direction, trend.Slope, trend.Confidence*100)
	maxPeriod := len(vals) / timeseries.MinPointsPerPeriod
	if maxPeriod > 24 {
		maxPeriod = 24
	}
	season := &timeseries.Seasonality{}
	if maxPeriod >= 2 {
		if s, err := timeseries.DetectSeasonality(vals, maxPeriod); err == nil {
			season = s
		}
	}
	if season.Period > 0 {
		fmt.Printf("seasonality: period %d (confidence %.0f%%)\n", season.Period, season.Confidence*100)
	} else {
		fmt.Println("seasonality: none detected")
	}
	if f, err := timeseries.ForecastSeries(vals, season.Period, 6, 0.9); err == nil {
		fmt.Printf("forecast (%s, 90%% intervals):\n", f.Method)
		for h := range f.Values {
			fmt.Printf("  t+%d: %.2f [%.2f, %.2f]\n", h+1, f.Values[h], f.Lower[h], f.Upper[h])
		}
	}
	if anomalies, err := timeseries.DetectAnomalies(vals, season.Period, 3); err == nil && len(anomalies) > 0 {
		fmt.Printf("anomalies (|z| >= 3):\n")
		for _, a := range anomalies {
			fmt.Printf("  index %d: %.2f (z = %+.1f)\n", a.Index, a.Value, a.Z)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cdaquery:", err)
	os.Exit(1)
}
